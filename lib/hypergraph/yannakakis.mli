(** Yannakakis's algorithm for acyclic queries [35].

    Three sweeps over a join tree: an upward semijoin pass (each node
    reduced by its children), a downward pass (each child reduced by its
    parent), and an upward join-project pass that assembles the answer
    while keeping only variables still needed above — guaranteeing
    intermediate results no larger than [input + output]. This is the
    semijoin technique of Wong–Youssefi [34] that the paper's setup
    deliberately neutralizes (projecting an [edge] column yields all
    colors) and lists as future work for varying-arity workloads. *)

val sweeps :
  ?ctx:Relalg.Ctx.t ->
  parent:int array ->
  order:int list ->
  vars:Graphlib.Graph.Iset.t array ->
  free:int list ->
  Relalg.Relation.t array ->
  Relalg.Relation.t
(** The three sweeps over an arbitrary tree of materialized relations:
    node [i] holds relation [rels.(i)] over variable set [vars.(i)]
    (classically a hyperedge's atom relation; for GHD evaluation a
    decomposition bag). [order] must list every node bottom-up (children
    before parents); [parent.(i) = -1] marks a root, one per connected
    component — the per-component answers are cross-joined at the end.
    Sound whenever the tree satisfies the running-intersection property
    over [vars] and every join dependency is enforced inside some node's
    relation. The input array is not mutated. Returns the answer
    projected onto [free].
    @raise Invalid_argument on an empty node set.
    @raise Relalg.Limits.Abort when a resource guard trips. *)

val enumerate :
  ?ctx:Relalg.Ctx.t ->
  parent:int array ->
  order:int list ->
  free:int list ->
  Relalg.Relation.t array ->
  Relalg.Schema.t * ((Relalg.Tuple.t -> unit) -> unit)
(** The streaming counterpart of {!sweeps}: run only the upward and
    downward semijoin passes (the preprocessing), index each non-root
    node by its shared attributes with its parent, and return the answer
    schema ([free], in order) plus an iterator that backtracks over the
    reduced tree emitting one answer projection at a time. Because full
    reduction makes the tree globally consistent, every partial
    assignment extends — the search never dead-ends, so the delay
    between consecutive answers is bounded by the tree size (constant
    delay in data complexity). Emitted projections may repeat when
    [free] omits join attributes; wrap the iterator in a deduplicating
    {!Relalg.Cursor} for set semantics. A Boolean query ([free = []])
    emits the 0-ary tuple at most once, decided from nonemptiness of the
    reduced nodes without walking the join. Setup (the two sweeps and
    index build) happens before this function returns; the returned
    iterator touches no operators — only the prebuilt indexes — and
    charges the context's limits one tuple per emission.
    @raise Relalg.Limits.Abort when a resource guard trips (during setup
    or, via the per-emission charge, mid-enumeration). *)

val evaluate :
  ?ctx:Relalg.Ctx.t ->
  Conjunctive.Database.t -> Conjunctive.Cq.t -> Relalg.Relation.t option
(** [None] when the query is cyclic; otherwise the full answer
    (projected onto the target schema, or the 0-ary relation for a
    Boolean query). Cyclic queries are handled by the decomposition
    subsystem ([Ghd]), which materializes bags and reuses {!sweeps}. *)

val is_acyclic_query : Conjunctive.Cq.t -> bool
