(* Canonical labeling of a query's hypergraph structure.

   Colors are refined Weisfeiler–Leman-style over the incidence
   structure (variables <-> atom positions); remaining ties are broken
   by greedy individualization with a first-occurrence heuristic. The
   tie-break is deterministic but not a full canonical-form algorithm
   (graph canonization is GI-hard): isomorphic queries whose symmetries
   defeat the heuristic may canonicalize differently, which costs a
   cache miss, never a wrong answer — cache consumers compare canonical
   queries for full structural equality, and a canonical query is always
   a faithful bijective renaming of its source. *)

(* Hashtbl.hash truncates after ~10 meaningful nodes, which would fold
   long atom lists into colliding keys; combine explicitly instead. *)
let combine h x = (h * 0x01000193) lxor (x land max_int)

let hash_ints ints = List.fold_left combine 0x811c9dc5 ints

let hash_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := combine !acc (Char.code c)) s;
  combine !acc (String.length s)

type t = {
  query : Conjunctive.Cq.t;
  hash : int;
  to_canonical : (int, int) Hashtbl.t;
  of_canonical : int array;
}

let rename t v = Hashtbl.find t.to_canonical v

(* First-occurrence index of every variable: free list first, then the
   atoms in listing order. Deterministic for a fixed input text, and
   identical across instantiations of one query template (which rename
   variables but keep the listing order) — the case the plan cache is
   for. *)
let occurrence_order cq =
  let seen = Hashtbl.create 16 in
  let next = ref 0 in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v !next;
      incr next
    end
  in
  List.iter note cq.Conjunctive.Cq.free;
  List.iter
    (fun a -> List.iter note a.Conjunctive.Cq.vars)
    cq.Conjunctive.Cq.atoms;
  seen

let canonicalize cq =
  let vars = Conjunctive.Cq.vars cq in
  let n = List.length vars in
  let occurrence = occurrence_order cq in
  let color = Hashtbl.create n in
  (* Initial colors: position in the free list (order is part of the
     query's meaning — it is the output schema), or a constant for bound
     variables. *)
  let free_pos = Hashtbl.create 8 in
  List.iteri
    (fun i v -> if not (Hashtbl.mem free_pos v) then Hashtbl.add free_pos v i)
    cq.Conjunctive.Cq.free;
  List.iter
    (fun v ->
      let p = match Hashtbl.find_opt free_pos v with Some i -> i | None -> -1 in
      Hashtbl.replace color v (hash_ints [ 1; p ]))
    vars;
  let distinct_colors () =
    let s = Hashtbl.create n in
    Hashtbl.iter (fun _ c -> Hashtbl.replace s c ()) color;
    Hashtbl.length s
  in
  (* One refinement round: every variable absorbs the sorted multiset of
     its incidences, each incidence being the signature of an atom it
     occurs in (relation name + the ordered colors of all its argument
     positions) together with the positions the variable fills. *)
  let refine_round () =
    let atom_sigs =
      List.map
        (fun a ->
          let h = hash_string 0x811c9dc5 a.Conjunctive.Cq.rel in
          hash_ints
            (h :: List.map (fun v -> Hashtbl.find color v) a.Conjunctive.Cq.vars))
        cq.Conjunctive.Cq.atoms
    in
    let items = Hashtbl.create n in
    List.iter (fun v -> Hashtbl.replace items v []) vars;
    List.iter2
      (fun a sg ->
        List.iteri
          (fun pos v ->
            Hashtbl.replace items v (hash_ints [ sg; pos ] :: Hashtbl.find items v))
          a.Conjunctive.Cq.vars)
      cq.Conjunctive.Cq.atoms atom_sigs;
    List.iter
      (fun v ->
        let incidences = List.sort compare (Hashtbl.find items v) in
        Hashtbl.replace color v (hash_ints (Hashtbl.find color v :: incidences)))
      vars
  in
  let refine_to_fixpoint () =
    let rec loop prev rounds =
      if rounds > n then ()
      else begin
        refine_round ();
        let now = distinct_colors () in
        if now > prev then loop now (rounds + 1)
      end
    in
    loop (distinct_colors ()) 0
  in
  refine_to_fixpoint ();
  (* Individualize until every color class is a singleton: repeatedly
     pick the smallest-colored non-singleton class, split off its
     first-occurring member, and re-refine. *)
  let rec individualize () =
    let by_color = Hashtbl.create n in
    List.iter
      (fun v ->
        let c = Hashtbl.find color v in
        Hashtbl.replace by_color c (v :: (try Hashtbl.find by_color c with Not_found -> [])))
      vars;
    let target =
      Hashtbl.fold
        (fun c members acc ->
          match (members, acc) with
          | [ _ ], _ -> acc
          | _, Some (c', _) when c' <= c -> acc
          | _, _ -> Some (c, members))
        by_color None
    in
    match target with
    | None -> ()
    | Some (c, members) ->
      let chosen =
        List.fold_left
          (fun best v ->
            if Hashtbl.find occurrence v < Hashtbl.find occurrence best then v
            else best)
          (List.hd members) (List.tl members)
      in
      Hashtbl.replace color chosen (hash_ints [ 2; c ]);
      refine_to_fixpoint ();
      individualize ()
  in
  individualize ();
  (* All classes are singletons: rank variables by color to get the
     canonical ids 0..n-1. *)
  let ranked =
    List.sort (fun a b -> compare (Hashtbl.find color a) (Hashtbl.find color b)) vars
  in
  let to_canonical = Hashtbl.create n in
  let of_canonical = Array.make (max n 1) 0 in
  List.iteri
    (fun i v ->
      Hashtbl.replace to_canonical v i;
      of_canonical.(i) <- v)
    ranked;
  let rename v = Hashtbl.find to_canonical v in
  let atoms =
    List.sort
      (fun a b ->
        match compare a.Conjunctive.Cq.rel b.Conjunctive.Cq.rel with
        | 0 -> compare a.Conjunctive.Cq.vars b.Conjunctive.Cq.vars
        | c -> c)
      (List.map
         (fun a ->
           {
             Conjunctive.Cq.rel = a.Conjunctive.Cq.rel;
             vars = List.map rename a.Conjunctive.Cq.vars;
           })
         cq.Conjunctive.Cq.atoms)
  in
  let free = List.map rename cq.Conjunctive.Cq.free in
  let query = Conjunctive.Cq.make ~atoms ~free in
  let hash =
    hash_ints
      (hash_ints free
      :: List.map
           (fun a ->
             hash_ints (hash_string 0x811c9dc5 a.Conjunctive.Cq.rel :: a.Conjunctive.Cq.vars))
           atoms)
  in
  { query; hash; to_canonical; of_canonical }

let equal_query a b =
  a.Conjunctive.Cq.free = b.Conjunctive.Cq.free
  && a.Conjunctive.Cq.atoms = b.Conjunctive.Cq.atoms

let equal a b = a.hash = b.hash && equal_query a.query b.query
