(** Generalized hypertree decompositions (Gottlob–Leone–Scarcello [21],
    the width notion the paper's §7 lists beside treewidth).

    A generalized hypertree decomposition of a hypergraph is a tree
    decomposition of its primal graph whose every bag is additionally
    {e covered} by a set of hyperedges; its width is the largest cover
    size. Acyclic hypergraphs are exactly those of width 1, and the
    width never exceeds treewidth + 1 (each vertex is in some edge).
    For bounded-arity relations (the paper's setting) the notions
    coincide up to constants, which is why the paper focuses on
    treewidth; this module exists for the varying-arity workloads of
    §7. *)

module Iset = Graphlib.Graph.Iset

type t = {
  tree : Graphlib.Graph.t;
  chi : Iset.t array;      (** variable bag of each node *)
  lambda : int list array; (** covering hyperedge indices of each node *)
}

val width : t -> int
(** Largest cover size (NOT minus one, following the literature). *)

val is_valid : Hypergraph.t -> t -> bool
(** Generalized-hypertree conditions: (1) every hyperedge is contained
    in some bag, (2) each variable's bags form a connected subtree,
    (3) each bag is covered by the union of its lambda edges. *)

val of_tree_decomposition :
  Hypergraph.t -> Graphlib.Treedec.t -> of_vertex:int array -> t
(** Cover each bag of a (primal-graph) tree decomposition greedily with
    hyperedges. [of_vertex] maps decomposition vertices to hypergraph
    variables. @raise Invalid_argument if a bag variable appears in no
    hyperedge. *)

val ghw_upper_bound : Hypergraph.t -> int * t
(** Heuristic generalized hypertree width: best heuristic elimination
    order on the primal graph, decompose, cover. Returns the width and
    its witness. Acyclic hypergraphs are guaranteed width 1. *)
