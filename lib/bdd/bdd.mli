(** Reduced ordered binary decision diagrams (ROBDDs), hash-consed.

    The paper grew out of BDD-based CSP solving (Rish–Dechter [29], San
    Miguel Aguirre–Vardi [30]) and its conclusion points to symbolic
    model checking's quantification scheduling [9] — all of which
    manipulate constraint sets as BDDs and eliminate variables by
    existential quantification. This package provides exactly what
    symbolic bucket elimination needs: conjunction, disjunction,
    negation, single-variable quantification, support sets, and model
    counting.

    Variables are integers [0 .. num_vars-1]; variable [0] is at the top
    of every diagram. Nodes are hash-consed, so structural equality of
    the abstract handles is semantic equivalence. *)

type manager
type node

val manager : ?initial_capacity:int -> num_vars:int -> unit -> manager
(** @raise Invalid_argument if [num_vars < 0]. *)

val num_vars : manager -> int
val zero : manager -> node
val one : manager -> node
val var : manager -> int -> node
(** The function "variable [i] is true".
    @raise Invalid_argument if out of range. *)

val nvar : manager -> int -> node
(** The negated variable. *)

val is_zero : node -> bool
val is_one : node -> bool
val equal : node -> node -> bool

val mk_not : manager -> node -> node
val mk_and : manager -> node -> node -> node
val mk_or : manager -> node -> node -> node
val mk_xor : manager -> node -> node -> node
val ite : manager -> node -> node -> node -> node

val exists : manager -> int -> node -> node
(** Existentially quantify one variable. *)

val exists_many : manager -> int list -> node -> node

val support : manager -> node -> int list
(** Variables the function actually depends on, ascending. *)

val size : manager -> node -> int
(** Internal nodes reachable from the root (terminals excluded). *)

val sat_count : manager -> node -> float
(** Number of satisfying assignments over all [num_vars] variables. *)

val eval : manager -> node -> bool array -> bool
(** @raise Invalid_argument if the assignment is shorter than
    [num_vars]. *)

val any_sat : manager -> node -> (int * bool) list option
(** A partial assignment (variables along one 1-path) satisfying the
    function, or [None] for the zero function. Unmentioned variables
    are don't-cares. *)

val live_nodes : manager -> int
(** Total hash-consed nodes allocated so far (a growth diagnostic). *)
