(* Array-backed hash-consed ROBDD. Node 0 is the constant false, node 1
   the constant true; every other node is (var, low, high) with
   low <> high and var strictly smaller than its children's. *)

type node = int

type manager = {
  nvars : int;
  mutable variable : int array;  (* per node *)
  mutable low : int array;
  mutable high : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  and_cache : (int * int, int) Hashtbl.t;
  not_cache : (int, int) Hashtbl.t;
  exists_cache : (int * int, int) Hashtbl.t;
}

let terminal_variable = max_int

let manager ?(initial_capacity = 1024) ~num_vars () =
  if num_vars < 0 then invalid_arg "Bdd.manager: negative num_vars";
  let cap = max 2 initial_capacity in
  let m =
    {
      nvars = num_vars;
      variable = Array.make cap terminal_variable;
      low = Array.make cap 0;
      high = Array.make cap 0;
      next = 2;
      unique = Hashtbl.create cap;
      and_cache = Hashtbl.create cap;
      not_cache = Hashtbl.create cap;
      exists_cache = Hashtbl.create cap;
    }
  in
  m

let num_vars m = m.nvars
let zero _ : node = 0
let one _ : node = 1
let is_zero (n : node) = n = 0
let is_one (n : node) = n = 1
let equal (a : node) (b : node) = a = b

let grow m =
  let cap = Array.length m.variable in
  if m.next >= cap then begin
    let blit fresh old =
      Array.blit old 0 fresh 0 cap;
      fresh
    in
    m.variable <- blit (Array.make (2 * cap) terminal_variable) m.variable;
    m.low <- blit (Array.make (2 * cap) 0) m.low;
    m.high <- blit (Array.make (2 * cap) 0) m.high
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      grow m;
      let n = m.next in
      m.next <- n + 1;
      m.variable.(n) <- v;
      m.low.(n) <- lo;
      m.high.(n) <- hi;
      Hashtbl.add m.unique (v, lo, hi) n;
      n

let check_var m i =
  if i < 0 || i >= m.nvars then
    invalid_arg (Printf.sprintf "Bdd: variable %d out of range [0,%d)" i m.nvars)

let var m i =
  check_var m i;
  mk m i 0 1

let nvar m i =
  check_var m i;
  mk m i 1 0

let rec mk_not m n =
  if n = 0 then 1
  else if n = 1 then 0
  else
    match Hashtbl.find_opt m.not_cache n with
    | Some r -> r
    | None ->
      let r = mk m m.variable.(n) (mk_not m m.low.(n)) (mk_not m m.high.(n)) in
      Hashtbl.add m.not_cache n r;
      r

let rec mk_and m a b =
  if a = b then a
  else if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.and_cache key with
    | Some r -> r
    | None ->
      let va = m.variable.(a) and vb = m.variable.(b) in
      let v = min va vb in
      let a0, a1 = if va = v then (m.low.(a), m.high.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.low.(b), m.high.(b)) else (b, b) in
      let r = mk m v (mk_and m a0 b0) (mk_and m a1 b1) in
      Hashtbl.add m.and_cache key r;
      r
  end

(* De Morgan keeps the cache pressure on a single binary operation. *)
let mk_or m a b = mk_not m (mk_and m (mk_not m a) (mk_not m b))

let mk_xor m a b =
  mk_or m (mk_and m a (mk_not m b)) (mk_and m (mk_not m a) b)

let ite m c t e = mk_or m (mk_and m c t) (mk_and m (mk_not m c) e)

let rec exists m v n =
  if n = 0 || n = 1 then n
  else begin
    let vn = m.variable.(n) in
    if vn > v then n
    else
      match Hashtbl.find_opt m.exists_cache (v, n) with
      | Some r -> r
      | None ->
        let r =
          if vn = v then mk_or m m.low.(n) m.high.(n)
          else mk m vn (exists m v m.low.(n)) (exists m v m.high.(n))
        in
        Hashtbl.add m.exists_cache (v, n) r;
        r
  end

let exists_many m vars n =
  (* Quantify bottom-most variables first: cheaper intermediate BDDs. *)
  List.fold_left
    (fun acc v -> exists m v acc)
    n
    (List.sort (fun a b -> compare b a) vars)

let support m n =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.variable.(n) ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go n;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size m n =
  let seen = Hashtbl.create 64 in
  let rec go n acc =
    if n <= 1 || Hashtbl.mem seen n then acc
    else begin
      Hashtbl.add seen n ();
      go m.low.(n) (go m.high.(n) (acc + 1))
    end
  in
  go n 0

let sat_count m n =
  let cache = Hashtbl.create 64 in
  (* Count over variables strictly below [from]. *)
  let rec count n from =
    if n = 0 then 0.0
    else if n = 1 then Float.pow 2.0 (float_of_int (m.nvars - from))
    else begin
      let v = m.variable.(n) in
      let base =
        match Hashtbl.find_opt cache n with
        | Some c -> c
        | None ->
          let c =
            (count m.low.(n) (v + 1) +. count m.high.(n) (v + 1)) /. 2.0
          in
          Hashtbl.add cache n c;
          c
      in
      (* [base] counts over vars below v, halved once; rescale to count
         over vars below [from]. *)
      base *. Float.pow 2.0 (float_of_int (v - from + 1))
    end
  in
  count n 0

let eval m n assignment =
  if Array.length assignment < m.nvars then
    invalid_arg "Bdd.eval: assignment too short";
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if assignment.(m.variable.(n)) then go m.high.(n)
    else go m.low.(n)
  in
  go n

let any_sat m n =
  let rec go n acc =
    if n = 0 then None
    else if n = 1 then Some (List.rev acc)
    else if m.high.(n) <> 0 then go m.high.(n) ((m.variable.(n), true) :: acc)
    else go m.low.(n) ((m.variable.(n), false) :: acc)
  in
  go n []

let live_nodes m = m.next - 2
