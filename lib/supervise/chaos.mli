(** Deterministic fault injection.

    A chaos fault arms the {!Relalg.Limits} hook so a run misbehaves at a
    precisely reproducible point — when the N-th operator starts, or once
    K tuples have been charged. Two fault shapes exist: an {e abort}
    raises a chosen typed reason (proving the degradation ladder and the
    abort taxonomy under every failure mode), and a {e stall} injects a
    latency bubble — it sleeps (or advances a fake clock) at the trigger
    point, so deadline enforcement under slow operators is testable
    without real slow inputs. *)

type trigger =
  | At_operator of int
      (** fire when the [n]-th operator (1-based) begins executing *)
  | After_tuples of int
      (** fire once at least [k] tuples have been charged — i.e. inside
          an operator's inner loop, mid-join *)

type fault =
  | Abort of Relalg.Limits.reason
      (** raise this typed reason at the trigger; defaults to
          [Injected label], but a fault can impersonate e.g. [Deadline]
          to exercise that path deterministically *)
  | Stall of float
      (** at the trigger, call the fault's sleeper with this many
          seconds — once per arming — and continue; with a wall-clock
          deadline in force the next poll then trips [Deadline] *)

type t = {
  label : string;
  trigger : trigger;
  fault : fault;
  attempts : int list option;
      (** ladder attempt indices (0-based) the fault arms on; [None] hits
          every attempt. Faults restricted to early attempts let tests
          prove a rescue. *)
  sleeper : float -> unit;
      (** how a [Stall] spends its seconds; defaults to [Unix.sleepf].
          Tests inject a function advancing the same fake clock the
          limits read, making stall-then-deadline fully deterministic. *)
}

val at_operator :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  int -> t

val after_tuples :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  int -> t

val stall_at_operator :
  ?label:string -> ?attempts:int list -> ?sleeper:(float -> unit) ->
  seconds:float -> int -> t
(** A latency fault: when the [n]-th operator starts, sleep [seconds]
    (through [sleeper]) exactly once, then let the run continue into the
    deadline checks. *)

val stall_after_tuples :
  ?label:string -> ?attempts:int list -> ?sleeper:(float -> unit) ->
  seconds:float -> int -> t
(** As {!stall_at_operator}, but triggered after [k] charged tuples. *)

val seeded :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  seed:int -> max_operator:int -> unit -> t
(** An [At_operator] fault whose position is drawn uniformly from
    [1, max_operator] by a {!Graphlib.Rng} seeded with [seed] — the same
    seed always yields the same fault. *)

val arm : t -> attempt:int -> Relalg.Limits.t -> unit
(** Install the fault's hook on the limits if this attempt index is in
    its scope; otherwise leave the limits untouched. A [Stall] fires at
    most once per [arm]; an [Abort] raises on every hook call at or past
    the trigger (the first one ends the run). *)
