(** Deterministic fault injection.

    A chaos fault arms the {!Relalg.Limits} hook so a run aborts at a
    precisely reproducible point — when the N-th operator starts, or once
    K tuples have been charged — with a chosen typed reason. Tests use it
    to prove the degradation ladder and the abort taxonomy behave under
    every failure mode without relying on real clocks or huge inputs. *)

type trigger =
  | At_operator of int
      (** fire when the [n]-th operator (1-based) begins executing *)
  | After_tuples of int
      (** fire once at least [k] tuples have been charged — i.e. inside
          an operator's inner loop, mid-join *)

type t = {
  label : string;
  trigger : trigger;
  reason : Relalg.Limits.reason;
      (** what the fault reports as; defaults to [Injected label], but a
          fault can impersonate e.g. [Deadline] to exercise that path
          deterministically *)
  attempts : int list option;
      (** ladder attempt indices (0-based) the fault arms on; [None] hits
          every attempt. Faults restricted to early attempts let tests
          prove a rescue. *)
}

val at_operator :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  int -> t

val after_tuples :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  int -> t

val seeded :
  ?label:string -> ?reason:Relalg.Limits.reason -> ?attempts:int list ->
  seed:int -> max_operator:int -> unit -> t
(** An [At_operator] fault whose position is drawn uniformly from
    [1, max_operator] by a {!Graphlib.Rng} seeded with [seed] — the same
    seed always yields the same fault. *)

val arm : t -> attempt:int -> Relalg.Limits.t -> unit
(** Install the fault's hook on the limits if this attempt index is in
    its scope; otherwise leave the limits untouched. *)
