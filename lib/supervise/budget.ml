type t = {
  deadline_seconds : float option;
  max_total_tuples : int;
  max_cardinality : int;
  fuel : int;
}

let default =
  {
    deadline_seconds = None;
    max_total_tuples = 20_000_000;
    max_cardinality = 2_000_000;
    fuel = max_int;
  }

let unlimited =
  {
    deadline_seconds = None;
    max_total_tuples = max_int;
    max_cardinality = max_int;
    fuel = max_int;
  }

let with_deadline s t = { t with deadline_seconds = Some s }
let with_fuel fuel t = { t with fuel }
let with_max_total max_total_tuples t = { t with max_total_tuples }
let with_max_cardinality max_cardinality t = { t with max_cardinality }

let scale factor t =
  if factor <= 0.0 then invalid_arg "Budget.scale: factor must be positive";
  let scale_int n =
    if n = max_int then max_int
    else max 1 (int_of_float (float_of_int n *. factor))
  in
  {
    deadline_seconds = Option.map (fun s -> s *. factor) t.deadline_seconds;
    max_total_tuples = scale_int t.max_total_tuples;
    max_cardinality = scale_int t.max_cardinality;
    fuel = scale_int t.fuel;
  }

let to_limits ?clock t =
  Relalg.Limits.create ~max_tuples:t.max_cardinality
    ~max_total:t.max_total_tuples ~fuel:t.fuel
    ?deadline_seconds:t.deadline_seconds ?clock ()

let pp ppf t =
  let cap ppf n =
    if n = max_int then Format.pp_print_string ppf "inf"
    else Format.pp_print_int ppf n
  in
  Format.fprintf ppf "deadline=%s total<=%a card<=%a fuel<=%a"
    (match t.deadline_seconds with
    | None -> "none"
    | Some s -> Printf.sprintf "%.3fs" s)
    cap t.max_total_tuples cap t.max_cardinality cap t.fuel
