(** Resilient execution supervisor.

    Wraps the compilation and execution of any {!Ppr_core.Driver.meth} in
    a supervised run: a {!Budget} bounds wall clock, materialized tuples,
    intermediate cardinality and operator fuel; aborts carry a typed
    {!Relalg.Limits.reason}; and instead of returning nothing, the
    supervisor retries down a {e degradation ladder} of structurally
    cheaper (or safer) methods, each rung with a freshly scaled budget and
    a jittered deterministic backoff. Every attempt is recorded in the
    {!report} so experiments can count rescues, not just failures.

    This is the "robust plans under uncertainty" concern of
    structure-guided evaluation: a width-blown bucket elimination should
    degrade to a mini-bucket bound, a greedy reordering, or the
    straightforward plan — never into silence. *)

module Budget = Budget
module Chaos = Chaos

type attempt = {
  rung : int;  (** 0-based position in the ladder *)
  meth : Ppr_core.Driver.meth;
  budget : Budget.t;  (** the scaled budget this attempt ran under *)
  backoff_seconds : float;
      (** the jittered backoff computed before this attempt (0 for the
          first attempt, and whenever no backoff base is configured) *)
  outcome : Ppr_core.Driver.outcome;
  approximate : bool;
      (** true when the rung's method only guarantees an upper bound
          (mini-bucket): a rescue here trades exactness for an answer *)
  replanned : bool;
      (** true for the inserted re-plan rung: same method, recompiled
          under the cardinalities observed in the aborted attempts *)
}

type report = {
  attempts : attempt list;  (** in execution order; never empty *)
  result : Ppr_core.Driver.outcome option;
      (** the completed attempt's outcome, [None] when every rung died *)
  rescued : bool;
      (** completed only after at least one aborted attempt *)
  total_seconds : float;  (** compile + exec + backoff over all attempts *)
}

val is_approximate : Ppr_core.Driver.meth -> bool
(** Methods whose results are upper bounds rather than exact answers. *)

val default_ladder : Ppr_core.Driver.meth -> Ppr_core.Driver.meth list
(** The configurable cascade's default, starting from the given method:
    bucket elimination degrades through mini-bucket and reordering to the
    straightforward plan; {!Ppr_core.Driver.Hybrid} walks its portfolio's
    next-best candidates; methods with nothing cheaper below them retry
    alone. The first element is always the method itself. *)

val run :
  ?rng:Graphlib.Rng.t ->
  ?feedback:Ppr_core.Cost.feedback ->
  ?observer:(Ppr_core.Cost.observation list -> unit) ->
  ?replan:bool ->
  ?budget:Budget.t ->
  ?ladder:Ppr_core.Driver.meth list ->
  ?budget_scaling:float ->
  ?backoff_base:float ->
  ?sleep:bool ->
  ?chaos:Chaos.t ->
  ?clock:(unit -> float) ->
  ?compiled:Ppr_core.Driver.compiled ->
  ?overall_deadline_seconds:float ->
  ?ctx:Relalg.Ctx.t ->
  Ppr_core.Driver.meth ->
  Conjunctive.Database.t ->
  Conjunctive.Cq.t ->
  report
(** Run [meth] under [budget] (default {!Budget.default}); on a typed
    abort, walk the [ladder] (default {!default_ladder}). Rung [i] runs
    under [Budget.scale (budget_scaling ^ i) budget] (default scaling
    [1.0], i.e. a fresh identical budget per rung). Before retry [i >= 1]
    a backoff of [backoff_base * 2^(i-1)], jittered deterministically in
    [0.5x, 1.5x) from [rng], is recorded — and actually slept only when
    [sleep] is true (default false: ladder retries are synchronous
    recomputation, so sleeping only matters for transient external
    faults). [chaos] arms a fault on the attempts in its scope. [clock]
    is forwarded to the budget's limits. [ctx] supplies telemetry, backend
    and join algorithm to every rung; each rung's limits come from its
    scaled budget, overriding any limits in [ctx]. With telemetry, every
    rung runs
    in a [supervise.rung] span (attributes: rung index, method, completion
    status or abort reason), rung wall time feeds the
    [supervise.rung_seconds] histogram, and the registry counts
    [supervise.runs], [supervise.rescues] and [supervise.exhausted].

    [compiled] (a {!Ppr_core.Driver.prepare} artifact for [meth] on this
    query and database — a plan-cache hit) is handed to rung 0 when that
    rung runs the requested method, skipping its compile phase; deeper
    rungs run different methods and always recompile.

    [overall_deadline_seconds] bounds the {e whole} supervised run, not
    one rung: every backoff pause is capped at the time remaining to it
    (a large [backoff_base] never sleeps past the caller's deadline),
    each rung's budget deadline is clamped to the remainder, and once
    the remainder reaches zero the ladder stops walking — the serving
    layer's per-request deadline lands here, turning the ladder into
    bounded load-shedding.

    [feedback] corrects the cost model in every rung's compile phase
    (see {!Ppr_core.Driver.run}); [observer] receives each rung's
    harvested observations. [replan] (default false) arms the adaptive
    rung: when an attempt of a cost-based method ({!Ppr_core.Driver.Naive},
    [Hybrid], [Hybrid_rank]) aborts after harvesting at least one
    observation, the {e same} method is retried once, recompiled under a
    feedback that layers the aborted attempts' measured intermediate
    cardinalities over [feedback] — the observed blow-up steers the new
    plan away from the order that caused it — before the ladder sheds to
    weaker methods. At most one re-plan per ladder; each counts on
    [supervise.replans], and the attempt is flagged [replanned]. *)

val pp_report : Format.formatter -> report -> unit
