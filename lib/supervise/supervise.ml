module Budget = Budget
module Chaos = Chaos
module Driver = Ppr_core.Driver

type attempt = {
  rung : int;
  meth : Driver.meth;
  budget : Budget.t;
  backoff_seconds : float;
  outcome : Driver.outcome;
  approximate : bool;
  replanned : bool;
}

type report = {
  attempts : attempt list;
  result : Driver.outcome option;
  rescued : bool;
  total_seconds : float;
}

let log_src = Logs.Src.create "ppr.supervise" ~doc:"Supervised execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

let is_approximate = function
  | Driver.Minibucket _ -> true
  | Driver.Naive _ | Driver.Straightforward | Driver.Early_projection
  | Driver.Reorder | Driver.Bucket_elimination | Driver.Hybrid
  | Driver.Hybrid_rank _ | Driver.Wcoj | Driver.Ghd ->
    false

(* Methods whose plan choice actually listens to the cost model — the
   only ones a mid-ladder re-plan with corrected estimates can help. *)
let cost_based = function
  | Driver.Naive _ | Driver.Hybrid | Driver.Hybrid_rank _ -> true
  | Driver.Straightforward | Driver.Early_projection | Driver.Reorder
  | Driver.Bucket_elimination | Driver.Minibucket _ | Driver.Wcoj
  | Driver.Ghd ->
    false

let default_ladder = function
  | Driver.Bucket_elimination ->
    [
      Driver.Bucket_elimination; Driver.Minibucket 3; Driver.Reorder;
      Driver.Straightforward;
    ]
  | Driver.Wcoj ->
    [
      Driver.Wcoj; Driver.Bucket_elimination; Driver.Minibucket 3;
      Driver.Reorder; Driver.Straightforward;
    ]
  | Driver.Ghd ->
    [
      Driver.Ghd; Driver.Bucket_elimination; Driver.Minibucket 3;
      Driver.Reorder; Driver.Straightforward;
    ]
  | Driver.Hybrid ->
    [
      Driver.Hybrid_rank 0; Driver.Hybrid_rank 1; Driver.Hybrid_rank 2;
      Driver.Straightforward;
    ]
  | Driver.Hybrid_rank n ->
    [
      Driver.Hybrid_rank n; Driver.Hybrid_rank (n + 1);
      Driver.Hybrid_rank (n + 2); Driver.Straightforward;
    ]
  | Driver.Minibucket i when i > 1 ->
    [
      Driver.Minibucket i; Driver.Minibucket (i - 1); Driver.Reorder;
      Driver.Straightforward;
    ]
  | Driver.Early_projection ->
    [ Driver.Early_projection; Driver.Reorder; Driver.Straightforward ]
  | Driver.Reorder -> [ Driver.Reorder; Driver.Straightforward ]
  | (Driver.Naive _ | Driver.Straightforward | Driver.Minibucket _) as m ->
    [ m ]

(* Exponential backoff with deterministic jitter in [0.5x, 1.5x): rung i's
   retry waits base * 2^(i-1), scaled by a draw from the seeded rng, so a
   fleet of supervisors with distinct seeds doesn't retry in lockstep while
   any single run stays bit-for-bit reproducible. *)
let backoff ~base ~rng i =
  if base <= 0.0 || i < 1 then 0.0
  else
    base
    *. Float.pow 2.0 (float_of_int (i - 1))
    *. (0.5 +. Graphlib.Rng.float rng 1.0)

let run ?rng ?feedback ?observer ?(replan = false) ?(budget = Budget.default)
    ?ladder ?(budget_scaling = 1.0) ?(backoff_base = 0.0) ?(sleep = false)
    ?chaos ?clock ?compiled ?overall_deadline_seconds
    ?(ctx = Relalg.Ctx.null) meth db cq =
  let telemetry = Relalg.Ctx.telemetry ctx in
  if budget_scaling <= 0.0 then
    invalid_arg "Supervise.run: budget_scaling must be positive";
  let rungs =
    match ladder with
    | Some (_ :: _ as l) -> l
    | Some [] | None -> default_ladder meth
  in
  (* What the aborted attempts actually measured, latest sample wins;
     the re-plan rung layers these over the caller's feedback so its
     corrected model reflects the very intermediates that just blew up.
     Only armed when someone can use it. *)
  let observed : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  let capture =
    if replan || Option.is_some observer then
      Some
        (fun obs ->
          List.iter
            (fun o ->
              Hashtbl.replace observed o.Ppr_core.Cost.key
                (o.Ppr_core.Cost.measured, o.Ppr_core.Cost.estimated))
            obs;
          match observer with Some f -> f obs | None -> ())
    else None
  in
  let learned_feedback key =
    match Hashtbl.find_opt observed key with
    | Some (m, e) when e > 0. -> Some (Ppr_core.Cost.clamp_factor (m /. e))
    | _ -> ( match feedback with Some f -> f key | None -> None)
  in
  let replanned_once = ref false in
  let backoff_rng =
    match rng with
    | Some r -> Graphlib.Rng.split r
    | None -> Graphlib.Rng.make 0x5eed
  in
  let wall = match clock with Some c -> c | None -> Unix.gettimeofday in
  (* The whole supervised run — every rung and every backoff pause — must
     fit inside the overall deadline: pauses are capped at the remaining
     time (a large backoff_base must not sleep past the caller's
     deadline), each rung's budget deadline is clamped to the remainder,
     and once the remainder hits zero the ladder stops walking. *)
  let overall = Option.map (fun s -> wall () +. s) overall_deadline_seconds in
  let overall_remaining () =
    Option.map (fun d -> Float.max 0.0 (d -. wall ())) overall
  in
  let rec go i backoff_spent attempts = function
    | [] -> (List.rev attempts, None, backoff_spent)
    | (m, is_replan) :: rest ->
      let rung_budget =
        if i = 0 then budget
        else Budget.scale (Float.pow budget_scaling (float_of_int i)) budget
      in
      let pause =
        let p = backoff ~base:backoff_base ~rng:backoff_rng i in
        match overall_remaining () with
        | None -> p
        | Some remaining -> Float.min p remaining
      in
      if sleep && pause > 0.0 then Unix.sleepf pause;
      let rung_budget =
        match overall_remaining () with
        | None -> rung_budget
        | Some remaining ->
          let capped =
            match rung_budget.Budget.deadline_seconds with
            | Some s -> Float.min s remaining
            | None -> remaining
          in
          { rung_budget with Budget.deadline_seconds = Some capped }
      in
      let limits = Budget.to_limits ?clock rung_budget in
      (match chaos with Some c -> Chaos.arm c ~attempt:i limits | None -> ());
      let run_rung () =
        let compiled =
          (* A cached artifact only fits the rung actually running the
             requested method: rung 0 of the default ladder. Deeper
             rungs are different methods and recompile. *)
          match compiled with Some c when i = 0 && m = meth -> Some c | _ -> None
        in
        (* The re-plan rung compiles under the observations the aborted
           attempts just harvested (layered over the caller's feedback);
           ordinary rungs see only the caller's. *)
        let feedback =
          if is_replan then Some learned_feedback else feedback
        in
        Driver.run ?rng ?feedback ?observer:capture ?compiled
          ~ctx:(Relalg.Ctx.with_limits ctx limits) m db cq
      in
      let outcome =
        match telemetry with
        | None -> run_rung ()
        | Some t ->
          let wall = Unix.gettimeofday in
          let started = wall () in
          let o =
            Telemetry.with_span t "supervise.rung"
              ~attrs:
                [
                  ("rung", Telemetry.Attr.Int i);
                  ("method", Telemetry.Attr.String (Driver.method_name m));
                ]
              (fun sp ->
                let o = run_rung () in
                Telemetry.Span.set_attr sp "status"
                  (Telemetry.Attr.String
                     (match o.Driver.status with
                     | Driver.Completed -> "completed"
                     | Driver.Aborted a ->
                       Relalg.Limits.reason_label a.Driver.reason));
                o)
          in
          let reg = Telemetry.metrics t in
          Telemetry.Metrics.observe
            (Telemetry.Metrics.histogram reg "supervise.rung_seconds")
            (wall () -. started);
          o
      in
      let attempt =
        {
          rung = i;
          meth = m;
          budget = rung_budget;
          backoff_seconds = pause;
          outcome;
          approximate = is_approximate m;
          replanned = is_replan;
        }
      in
      (match outcome.Driver.status with
      | Driver.Completed ->
        if i > 0 then
          Log.info (fun f ->
              f "rescued by %s at rung %d after %d aborted attempt(s)"
                (Driver.method_name m) i (List.length attempts))
      | Driver.Aborted a ->
        Log.info (fun f ->
            f "rung %d (%s) aborted: %s" i (Driver.method_name m)
              (Relalg.Limits.describe a.Driver.reason)));
      (match outcome.Driver.status with
      | Driver.Completed ->
        (List.rev (attempt :: attempts), Some outcome, backoff_spent +. pause)
      | Driver.Aborted _ -> (
        match overall_remaining () with
        | Some r when r <= 0.0 ->
          (* Out of overall time: stop shedding down the ladder — deeper
             rungs would only trip Deadline on their first poll. *)
          (List.rev (attempt :: attempts), None, backoff_spent +. pause)
        | _ ->
          (* Mid-ladder re-plan (once per ladder, opt-in): the aborted
             attempt measured real intermediate sizes before dying, so a
             cost-based method gets one retry compiled under those
             observations before the ladder sheds to a weaker method. *)
          let rest =
            if
              replan && (not is_replan) && (not !replanned_once)
              && cost_based m
              && Hashtbl.length observed > 0
            then begin
              replanned_once := true;
              Log.info (fun f ->
                  f "re-planning %s with %d observed cardinalities"
                    (Driver.method_name m) (Hashtbl.length observed));
              (match telemetry with
              | None -> ()
              | Some t ->
                Telemetry.Metrics.incr
                  (Telemetry.Metrics.counter (Telemetry.metrics t)
                     "supervise.replans"));
              (m, true) :: rest
            end
            else rest
          in
          go (i + 1) (backoff_spent +. pause) (attempt :: attempts) rest))
  in
  let attempts, result, backoff_spent =
    go 0 0.0 [] (List.map (fun m -> (m, false)) rungs)
  in
  let rescued = Option.is_some result && List.length attempts > 1 in
  (match telemetry with
  | None -> ()
  | Some t ->
    let reg = Telemetry.metrics t in
    Telemetry.Metrics.incr (Telemetry.Metrics.counter reg "supervise.runs");
    if rescued then
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter reg "supervise.rescues");
    if Option.is_none result then
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter reg "supervise.exhausted"));
  let work =
    List.fold_left
      (fun acc a ->
        acc
        +. a.outcome.Driver.compile_seconds
        +. a.outcome.Driver.exec_seconds)
      0.0 attempts
  in
  { attempts; result; rescued; total_seconds = work +. backoff_spent }

let pp_report ppf r =
  List.iter
    (fun a ->
      Format.fprintf ppf "rung %d: %a%s%s%s@." a.rung Driver.pp_outcome
        a.outcome
        (if a.approximate then "  [upper bound]" else "")
        (if a.replanned then "  [replanned]" else "")
        (if a.backoff_seconds > 0.0 then
           Printf.sprintf "  (backoff %.3fs)" a.backoff_seconds
         else ""))
    r.attempts;
  match (r.result, r.rescued) with
  | None, _ ->
    Format.fprintf ppf "exhausted: every rung aborted (%.4fs total)@."
      r.total_seconds
  | Some _, true ->
    Format.fprintf ppf "rescued after %d attempt(s) (%.4fs total)@."
      (List.length r.attempts) r.total_seconds
  | Some _, false ->
    Format.fprintf ppf "completed first try (%.4fs total)@." r.total_seconds
