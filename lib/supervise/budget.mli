(** A declarative resource budget for one supervised attempt.

    A [Budget.t] is the policy-level description of how much a run may
    cost; {!to_limits} compiles it into the mechanism-level
    {!Relalg.Limits.t} that the operators tick. Keeping the two separate
    lets the supervisor re-issue fresh, scaled limits for every rung of
    the degradation ladder from one immutable spec. *)

type t = {
  deadline_seconds : float option;  (** wall clock per attempt; [None] = no deadline *)
  max_total_tuples : int;  (** whole-run materialized-tuple budget *)
  max_cardinality : int;  (** per-intermediate-relation cap *)
  fuel : int;  (** operator-count budget; [max_int] = unlimited *)
}

val default : t
(** No deadline, the historical tuple caps (2M per relation, 20M total),
    unlimited fuel. *)

val unlimited : t

val with_deadline : float -> t -> t
val with_fuel : int -> t -> t
val with_max_total : int -> t -> t
val with_max_cardinality : int -> t -> t

val scale : float -> t -> t
(** Scale every finite component by the factor (deadline multiplies;
    integer caps round down but never below 1; unlimited components stay
    unlimited). Used for per-rung budget scaling down the ladder. *)

val to_limits : ?clock:(unit -> float) -> t -> Relalg.Limits.t
(** Fresh limits enforcing this budget; the deadline starts counting
    now. [clock] is forwarded to {!Relalg.Limits.create} (tests inject
    fake clocks). *)

val pp : Format.formatter -> t -> unit
