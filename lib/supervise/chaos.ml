type trigger = At_operator of int | After_tuples of int

type t = {
  label : string;
  trigger : trigger;
  reason : Relalg.Limits.reason;
  attempts : int list option;
}

let make ?(label = "chaos") ?reason ?attempts trigger =
  let reason =
    match reason with Some r -> r | None -> Relalg.Limits.Injected label
  in
  { label; trigger; reason; attempts }

let at_operator ?label ?reason ?attempts n =
  if n < 1 then invalid_arg "Chaos.at_operator: operators are 1-based";
  make ?label ?reason ?attempts (At_operator n)

let after_tuples ?label ?reason ?attempts k =
  if k < 0 then invalid_arg "Chaos.after_tuples: negative tuple count";
  make ?label ?reason ?attempts (After_tuples k)

let seeded ?label ?reason ?attempts ~seed ~max_operator () =
  if max_operator < 1 then invalid_arg "Chaos.seeded: max_operator < 1";
  let rng = Graphlib.Rng.make seed in
  at_operator ?label ?reason ?attempts (1 + Graphlib.Rng.int rng max_operator)

let arm t ~attempt limits =
  let in_scope =
    match t.attempts with None -> true | Some l -> List.mem attempt l
  in
  if in_scope then
    Relalg.Limits.set_hook limits
      (Some
         (fun ~ops ~total ->
           let fire =
             match t.trigger with
             | At_operator n -> ops >= n
             | After_tuples k -> total >= k
           in
           if fire then raise (Relalg.Limits.Abort t.reason)))
