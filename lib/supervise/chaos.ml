type trigger = At_operator of int | After_tuples of int

type fault = Abort of Relalg.Limits.reason | Stall of float

type t = {
  label : string;
  trigger : trigger;
  fault : fault;
  attempts : int list option;
  sleeper : float -> unit;
}

let make ?(label = "chaos") ?reason ?attempts ?(sleeper = Unix.sleepf) ?fault
    trigger =
  let fault =
    match (fault, reason) with
    | Some f, _ -> f
    | None, Some r -> Abort r
    | None, None -> Abort (Relalg.Limits.Injected label)
  in
  { label; trigger; fault; attempts; sleeper }

let at_operator ?label ?reason ?attempts n =
  if n < 1 then invalid_arg "Chaos.at_operator: operators are 1-based";
  make ?label ?reason ?attempts (At_operator n)

let after_tuples ?label ?reason ?attempts k =
  if k < 0 then invalid_arg "Chaos.after_tuples: negative tuple count";
  make ?label ?reason ?attempts (After_tuples k)

let stall ?(label = "stall") ?attempts ?sleeper ~seconds trigger =
  if seconds < 0.0 then invalid_arg "Chaos.stall: negative stall duration";
  make ~label ?attempts ?sleeper ~fault:(Stall seconds) trigger

let stall_at_operator ?label ?attempts ?sleeper ~seconds n =
  if n < 1 then invalid_arg "Chaos.stall_at_operator: operators are 1-based";
  stall ?label ?attempts ?sleeper ~seconds (At_operator n)

let stall_after_tuples ?label ?attempts ?sleeper ~seconds k =
  if k < 0 then invalid_arg "Chaos.stall_after_tuples: negative tuple count";
  stall ?label ?attempts ?sleeper ~seconds (After_tuples k)

let seeded ?label ?reason ?attempts ~seed ~max_operator () =
  if max_operator < 1 then invalid_arg "Chaos.seeded: max_operator < 1";
  let rng = Graphlib.Rng.make seed in
  at_operator ?label ?reason ?attempts (1 + Graphlib.Rng.int rng max_operator)

(* An abort fault may fire on every hook call past the trigger (the first
   raise ends the run anyway); a stall must fire exactly once per arming,
   or the sleep would repeat on every subsequent charge. *)
let arm t ~attempt limits =
  let in_scope =
    match t.attempts with None -> true | Some l -> List.mem attempt l
  in
  if in_scope then begin
    let fired = ref false in
    Relalg.Limits.set_hook limits
      (Some
         (fun ~ops ~total ->
           let fire =
             match t.trigger with
             | At_operator n -> ops >= n
             | After_tuples k -> total >= k
           in
           if fire then
             match t.fault with
             | Abort reason -> raise (Relalg.Limits.Abort reason)
             | Stall seconds ->
               if not !fired then begin
                 fired := true;
                 t.sleeper seconds
               end))
  end
