module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Tuple = Relalg.Tuple

type t = { relations : (string, Relation.t) Hashtbl.t }

let create () = { relations = Hashtbl.create 16 }
let add t name rel = Hashtbl.replace t.relations name rel
let find t name = Hashtbl.find t.relations name
let mem t name = Hashtbl.mem t.relations name
let names t = List.sort Stdlib.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.relations [])

let save_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Hashtbl.iter
    (fun name rel -> Relalg.Io.save (Filename.concat dir (name ^ ".tsv")) rel)
    t.relations

let load_dir dir =
  let t = create () in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".tsv" then
        add t
          (Filename.chop_suffix file ".tsv")
          (Relalg.Io.load (Filename.concat dir file)))
    (Sys.readdir dir);
  t

let eval_atom ?(ctx = Relalg.Ctx.null) t atom =
  let stats = Relalg.Ctx.stats ctx and limits = Relalg.Ctx.limits ctx in
  let sp =
    match Relalg.Ctx.telemetry ctx with
    | None -> None
    | Some tel -> Some (tel, Telemetry.start tel "op.scan")
  in
  (match limits with Some l -> Relalg.Limits.tick_operator l | None -> ());
  let base = find t atom.Cq.rel in
  let positions = Array.of_list atom.Cq.vars in
  if Array.length positions <> Relation.arity base then
    invalid_arg
      (Printf.sprintf "Database.eval_atom: atom %s has arity %d, relation has %d"
         atom.Cq.rel (Array.length positions) (Relation.arity base));
  let distinct = Cq.atom_vars atom in
  let out_schema = Schema.of_list distinct in
  (* Column of the first occurrence of each distinct variable. *)
  let first_col v =
    let rec go i = if positions.(i) = v then i else go (i + 1) in
    go 0
  in
  let keep = Array.of_list (List.map first_col distinct) in
  let consistent tup =
    let ok = ref true in
    Array.iteri
      (fun col v -> if Tuple.get tup col <> Tuple.get tup (first_col v) then ok := false)
      positions;
    !ok
  in
  let out =
    Relation.create ~backend:(Relalg.Ctx.backend ctx)
      ~size_hint:(Relation.cardinality base)
      out_schema
  in
  Relation.iter
    (fun tup -> if consistent tup then ignore (Relation.add out (Tuple.project tup keep)))
    base;
  (match limits with
  | Some l ->
    Relalg.Limits.charge l (Relation.cardinality out);
    Relalg.Limits.check_cardinality l (Relation.cardinality out)
  | None -> ());
  (match stats with
  | Some st ->
    Relalg.Stats.record_relation st ~arity:(Relation.arity out)
      ~cardinality:(Relation.cardinality out)
  | None -> ());
  (match sp with
  | None -> ()
  | Some (tel, sp) ->
    Telemetry.Span.add_attrs sp
      [
        ("relation", Telemetry.Attr.String atom.Cq.rel);
        ("rows.base", Telemetry.Attr.Int (Relation.cardinality base));
        ("rows.out", Telemetry.Attr.Int (Relation.cardinality out));
        ("arity.out", Telemetry.Attr.Int (Relation.arity out));
      ];
    Telemetry.stop tel sp);
  out
