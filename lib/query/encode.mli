(** Encoding combinatorial instances as project-join queries (Section 2).

    The k-COLOR encoding maps a graph to a query over one binary [edge]
    relation holding every pair of distinct colors; the query is nonempty
    over that database iff the graph is k-colorable. The k-SAT encoding
    maps each clause to an atom over one relation per polarity pattern,
    holding the satisfying assignments of that pattern. *)

type mode =
  | Boolean           (** empty target schema: a true Boolean query *)
  | Emulated_boolean  (** the paper's emulation: keep one variable *)
  | Fraction of float (** keep this fraction of the (non-isolated)
                          variables, chosen at random — the paper uses
                          [Fraction 0.2] *)

val edge_relation_name : string

val coloring_query :
  ?mode:mode -> ?rng:Graphlib.Rng.t -> edges:(int * int) list -> unit -> Cq.t
(** Query [pi(|><| edge(u,v))] with atoms in the given listing order.
    [mode] defaults to [Emulated_boolean]; [Fraction] requires [rng].
    @raise Invalid_argument on an empty edge list. *)

val coloring_query_of_graph :
  ?mode:mode -> ?rng:Graphlib.Rng.t -> Graphlib.Graph.t -> Cq.t
(** As {!coloring_query}, listing the graph's edges lexicographically. *)

val coloring_database : ?k:int -> unit -> Database.t
(** The [edge] relation over colors [1..k] (default 3): all ordered pairs
    of distinct colors — 6 tuples for 3 colors. *)

val sat_relation_name : Cnf.clause -> string
(** E.g. ["sat_101"] for a 3-clause with polarities [+,-,+]. *)

val sat_query : ?mode:mode -> ?rng:Graphlib.Rng.t -> Cnf.t -> Cq.t
(** One atom per clause over the clause's variables (which must be
    distinct within each clause). *)

val sat_database : Cnf.t -> Database.t
(** The polarity-pattern relations actually used by the formula, each
    holding the assignments (over [{0,1}]) satisfying the pattern. *)

val variable_namer : int -> string
(** The paper's 1-based naming: variable [i] prints as ["v<i+1>"]. *)
