(** Parsing conjunctive queries from Datalog-style text.

    Syntax:
    {[
      answer(X, Z) :- edge(X, Y), edge(Y, Z).
    ]}
    — a head atom naming the target schema, [:-], a comma-separated
    body, an optional final period. Identifiers are
    [[A-Za-z0-9_]+]; every argument is a variable (constants are not
    part of the project-join fragment — pin values with singleton
    relations instead, as {!Minimize.Homomorphism} does). A Boolean
    query has an empty head argument list: [q() :- ...]. Comments run
    from [%] to end of line.

    Variables are numbered in first-appearance order; the returned
    namer maps them back to their source names (and is suitable for
    {!Sqlgen.Translate} and {!Ppr_core.Plan.pp}). *)

type parsed = {
  query : Cq.t;
  head_name : string;
  namer : int -> string;
  variable_names : string list;  (** in numbering order *)
}

type error = { position : int; message : string }

val query : string -> (parsed, error) result
val query_exn : string -> parsed
(** @raise Failure with a position-annotated message. *)

val pp_error : Format.formatter -> error -> unit
