type atom = { rel : string; vars : int list }
type t = { atoms : atom list; free : int list }

let atom_vars atom =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    atom.vars

let vars t =
  List.sort_uniq Stdlib.compare
    (List.concat_map (fun a -> a.vars) t.atoms @ t.free)

let check t =
  let bound = List.concat_map (fun a -> a.vars) t.atoms in
  if List.exists (fun a -> a.vars = []) t.atoms then
    Error "atom with no variables"
  else
    match List.find_opt (fun v -> not (List.mem v bound)) t.free with
    | Some v -> Error (Printf.sprintf "free variable v%d occurs in no atom" v)
    | None ->
      if List.sort_uniq Stdlib.compare t.free <> List.sort Stdlib.compare t.free
      then Error "duplicate free variable"
      else Ok ()

let make ~atoms ~free =
  let t = { atoms; free } in
  match check t with Ok () -> t | Error msg -> invalid_arg ("Cq.make: " ^ msg)

let var_count t = List.length (vars t)
let atom_count t = List.length t.atoms
let is_boolean t = List.length t.free <= 1

let occurrences t =
  let table = Hashtbl.create 64 in
  List.iteri
    (fun idx atom ->
      List.iter
        (fun v ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt table v) in
          if not (List.mem idx prev) then Hashtbl.replace table v (idx :: prev))
        atom.vars)
    t.atoms;
  Hashtbl.iter (fun v idxs -> Hashtbl.replace table v (List.rev idxs)) table;
  table

let min_occur t =
  let occ = occurrences t in
  let table = Hashtbl.create (Hashtbl.length occ) in
  Hashtbl.iter
    (fun v idxs ->
      match idxs with
      | first :: _ -> Hashtbl.replace table v first
      | [] -> ())
    occ;
  table

let max_occur t =
  let occ = occurrences t in
  let table = Hashtbl.create (Hashtbl.length occ) in
  Hashtbl.iter
    (fun v idxs ->
      match List.rev idxs with
      | last :: _ -> Hashtbl.replace table v last
      | [] -> ())
    occ;
  table

let permute_atoms t rho =
  let atoms = Array.of_list t.atoms in
  let n = Array.length atoms in
  if Array.length rho <> n then invalid_arg "Cq.permute_atoms: length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Cq.permute_atoms: not a permutation"
      else seen.(i) <- true)
    rho;
  { t with atoms = Array.to_list (Array.map (fun i -> atoms.(i)) rho) }

let pp_var ppf v = Format.fprintf ppf "v%d" v

let pp_atom ppf atom =
  Format.fprintf ppf "%s(%a)" atom.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_var)
    atom.vars

let pp ppf t =
  Format.fprintf ppf "pi_{%a}(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_var)
    t.free
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " |><| ")
       pp_atom)
    t.atoms
