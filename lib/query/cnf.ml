type literal = { var : int; positive : bool }
type clause = literal list
type t = { num_vars : int; clauses : clause list }

let make ~num_vars ~clauses =
  List.iter
    (fun clause ->
      if clause = [] then invalid_arg "Cnf.make: empty clause";
      List.iter
        (fun lit ->
          if lit.var < 0 || lit.var >= num_vars then
            invalid_arg (Printf.sprintf "Cnf.make: variable %d out of range" lit.var))
        clause)
    clauses;
  { num_vars; clauses }

let random_ksat ~rng ~k ~num_vars ~num_clauses =
  if k > num_vars then invalid_arg "Cnf.random_ksat: k exceeds num_vars";
  let random_clause () =
    let vars = Array.of_list (List.init num_vars Fun.id) in
    Graphlib.Rng.shuffle rng vars;
    List.init k (fun i -> { var = vars.(i); positive = Graphlib.Rng.bool rng })
  in
  make ~num_vars ~clauses:(List.init num_clauses (fun _ -> random_clause ()))

let eval t assignment =
  List.for_all
    (List.exists (fun lit -> assignment.(lit.var) = lit.positive))
    t.clauses

let brute_force_satisfiable t =
  if t.num_vars > 22 then
    invalid_arg "Cnf.brute_force_satisfiable: too many variables";
  let assignment = Array.make (max t.num_vars 1) false in
  let rec try_var v =
    if v >= t.num_vars then eval t assignment
    else begin
      assignment.(v) <- false;
      try_var (v + 1)
      ||
      (assignment.(v) <- true;
       try_var (v + 1))
    end
  in
  try_var 0

let pp_literal ppf lit =
  Format.fprintf ppf "%sx%d" (if lit.positive then "" else "~") lit.var

let pp ppf t =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " /\\ ")
       (fun ppf clause ->
         Format.fprintf ppf "(%a)"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf " \\/ ")
              pp_literal)
           clause))
    t.clauses
