module Iset = Graphlib.Graph.Iset
module G = Graphlib.Graph
module Td = Graphlib.Treedec

type t = {
  parent : int array;
  children : int list array;
  working : Iset.t array;
  projected : Iset.t array;
  leaf_atom : int option array;
  root : int;
}

let node_count t = Array.length t.parent

let width t =
  Array.fold_left (fun acc l -> max acc (Iset.cardinal l)) 0 t.working

(* ------------------------------------------------------------------ *)
(* Algorithm 2: mark-and-sweep simplification of a tree decomposition. *)

let atom_vertex_set jg atom =
  Iset.of_list
    (List.map (Hashtbl.find jg.Joingraph.to_vertex) (Cq.atom_vars atom))

let find_host bags vset =
  let n = Array.length bags in
  let rec go i =
    if i >= n then invalid_arg "Jet: no bag hosts a relation's clique"
    else if Iset.subset vset bags.(i) then i
    else go (i + 1)
  in
  go 0

(* The Steiner closure of the marked nodes for one attribute: within the
   (connected) subtree of bags containing the attribute, repeatedly shed
   non-marked leaves; what remains is exactly the union of the pairwise
   paths between marked nodes — the fixpoint of the paper's lines 6-10. *)
let steiner_closure tree holders markers =
  if Iset.cardinal markers <= 1 then markers
  else begin
    let live = ref holders in
    let changed = ref true in
    while !changed do
      changed := false;
      Iset.iter
        (fun i ->
          if not (Iset.mem i markers) then begin
            let deg =
              Iset.cardinal (Iset.inter (G.neighbors tree i) !live)
            in
            if deg <= 1 then begin
              live := Iset.remove i !live;
              changed := true
            end
          end)
        !live
    done;
    !live
  end

let connect_components tree =
  (* Link one representative of each connected component to the first
     component's representative, turning a forest into a tree. *)
  let n = G.order tree in
  if n = 0 then ()
  else begin
    let comp = Array.make n (-1) in
    let rec visit c v =
      if comp.(v) = -1 then begin
        comp.(v) <- c;
        Iset.iter (visit c) (G.neighbors tree v)
      end
    in
    let reps = ref [] in
    for v = 0 to n - 1 do
      if comp.(v) = -1 then begin
        visit v v;
        reps := v :: !reps
      end
    done;
    match List.rev !reps with
    | [] | [ _ ] -> ()
    | anchor :: rest -> List.iter (fun r -> ignore (G.add_edge tree anchor r)) rest
  end

let mark_and_sweep cq jg (td : Td.t) =
  let atoms = Array.of_list cq.Cq.atoms in
  if Array.length atoms = 0 then invalid_arg "Jet.mark_and_sweep: no atoms";
  let n = Array.length td.Td.bags in
  let free_vset =
    Iset.of_list (List.map (Hashtbl.find jg.Joingraph.to_vertex) cq.Cq.free)
  in
  let marks = Array.make n Iset.empty in
  (* Lines 1-5: place every relation (and the target schema) in a bag. *)
  let r =
    Array.map
      (fun atom ->
        let vset = atom_vertex_set jg atom in
        let host = find_host td.Td.bags vset in
        marks.(host) <- Iset.union marks.(host) vset;
        host)
      atoms
  in
  let target_host = find_host td.Td.bags free_vset in
  marks.(target_host) <- Iset.union marks.(target_host) free_vset;
  (* Lines 6-10 as per-attribute Steiner closure. *)
  let attrs =
    Array.fold_left Iset.union Iset.empty td.Td.bags
  in
  Iset.iter
    (fun x ->
      let holders = ref Iset.empty and markers = ref Iset.empty in
      for i = 0 to n - 1 do
        if Iset.mem x td.Td.bags.(i) then holders := Iset.add i !holders;
        if Iset.mem x marks.(i) then markers := Iset.add i !markers
      done;
      let closed = steiner_closure td.Td.tree !holders !markers in
      Iset.iter (fun i -> marks.(i) <- Iset.add x marks.(i)) closed)
    attrs;
  (* Lines 11-19: drop unmarked labels and empty nodes. *)
  let survivors =
    List.filter (fun i -> not (Iset.is_empty marks.(i))) (List.init n Fun.id)
  in
  let survivors = if survivors = [] then [ target_host ] else survivors in
  let fresh_id = Hashtbl.create (List.length survivors) in
  List.iteri (fun idx old -> Hashtbl.add fresh_id old idx) survivors;
  let bags = Array.of_list (List.map (fun old -> marks.(old)) survivors) in
  let tree = G.create (Array.length bags) in
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt fresh_id u, Hashtbl.find_opt fresh_id v) with
      | Some u', Some v' -> ignore (G.add_edge tree u' v')
      | _ -> ())
    (G.edges td.Td.tree);
  connect_components tree;
  let remap old =
    match Hashtbl.find_opt fresh_id old with Some i -> i | None -> 0
  in
  ({ Td.bags; tree }, Array.map remap r, remap target_host)

(* ------------------------------------------------------------------ *)
(* Algorithm 3, with definitional labels.                              *)

let of_tree_decomposition cq jg td =
  let atoms = Array.of_list cq.Cq.atoms in
  let std, r, target_host = mark_and_sweep cq jg td in
  let k = Array.length std.Td.bags in
  let m = Array.length atoms in
  let total = k + m in
  let root = target_host in
  (* Combined adjacency: simplified-decomposition edges plus one leaf per
     atom hanging off its host. *)
  let adjacency = Array.make total [] in
  let connect a b =
    adjacency.(a) <- b :: adjacency.(a);
    adjacency.(b) <- a :: adjacency.(b)
  in
  List.iter (fun (u, v) -> connect u v) (G.edges std.Td.tree);
  Array.iteri (fun j host -> connect host (k + j)) r;
  (* Root the tree. *)
  let parent = Array.make total (-1) in
  let children = Array.make total [] in
  let visited = Array.make total false in
  let bfs = Queue.create () in
  Queue.add root bfs;
  visited.(root) <- true;
  let topo = ref [] in
  while not (Queue.is_empty bfs) do
    let u = Queue.pop bfs in
    topo := u :: !topo;
    List.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          children.(u) <- v :: children.(u);
          Queue.add v bfs
        end)
      adjacency.(u)
  done;
  let bottom_up = !topo in
  (* Occurrence counting: a variable is live at node u iff it occurs in an
     atom outside u's subtree or belongs to the target schema. *)
  let total_occ = Hashtbl.create 64 in
  Array.iter
    (fun atom ->
      List.iter
        (fun v ->
          Hashtbl.replace total_occ v
            (1 + Option.value ~default:0 (Hashtbl.find_opt total_occ v)))
        (Cq.atom_vars atom))
    atoms;
  let subtree_occ = Array.make total [] in
  let free_set = Iset.of_list cq.Cq.free in
  let working = Array.make total Iset.empty in
  let projected = Array.make total Iset.empty in
  let leaf_atom = Array.make total None in
  List.iter
    (fun u ->
      let own =
        if u >= k then begin
          let j = u - k in
          leaf_atom.(u) <- Some j;
          Cq.atom_vars atoms.(j)
        end
        else []
      in
      let counts = Hashtbl.create 16 in
      let bump v d =
        Hashtbl.replace counts v
          (d + Option.value ~default:0 (Hashtbl.find_opt counts v))
      in
      List.iter (fun v -> bump v 1) own;
      List.iter
        (fun c -> List.iter (fun (v, d) -> bump v d) subtree_occ.(c))
        children.(u);
      subtree_occ.(u) <- Hashtbl.fold (fun v d acc -> (v, d) :: acc) counts [];
      let occurs_outside v =
        Iset.mem v free_set
        || Option.value ~default:0 (Hashtbl.find_opt counts v)
           < Hashtbl.find total_occ v
      in
      working.(u) <-
        (if u >= k then Iset.of_list own
         else
           List.fold_left
             (fun acc c -> Iset.union acc projected.(c))
             Iset.empty children.(u));
      projected.(u) <-
        (if u = root then Iset.inter working.(u) free_set
         else Iset.filter occurs_outside working.(u)))
    bottom_up;
  { parent; children; working; projected; leaf_atom; root }

(* ------------------------------------------------------------------ *)
(* Algorithm 1: a join-expression tree is a tree decomposition.        *)

let to_tree_decomposition _cq jg t =
  let to_vtx label =
    Iset.map (fun v -> Hashtbl.find jg.Joingraph.to_vertex v) label
  in
  let bags = Array.map to_vtx t.working in
  let tree = G.create (node_count t) in
  Array.iteri
    (fun v p -> if p >= 0 then ignore (G.add_edge tree v p))
    t.parent;
  { Td.bags; tree }

(* ------------------------------------------------------------------ *)

let is_valid cq t =
  let n = node_count t in
  let atoms = Array.of_list cq.Cq.atoms in
  let m = Array.length atoms in
  let structure_ok =
    n = Array.length t.children
    && n = Array.length t.working
    && n = Array.length t.projected
    && n = Array.length t.leaf_atom
    && t.root >= 0 && t.root < n
    && t.parent.(t.root) = -1
    &&
    let ok = ref true in
    Array.iteri
      (fun v p ->
        if v <> t.root then
          if p < 0 || p >= n || not (List.mem v t.children.(p)) then ok := false)
      t.parent;
    Array.iteri
      (fun u cs -> List.iter (fun c -> if t.parent.(c) <> u then ok := false) cs)
      t.children;
    !ok
  in
  if not structure_ok then false
  else begin
    (* Reachability from the root. *)
    let seen = Array.make n false in
    let rec visit u =
      seen.(u) <- true;
      List.iter visit t.children.(u)
    in
    visit t.root;
    if not (Array.for_all Fun.id seen) then false
    else begin
      let leaves = List.filter (fun u -> t.children.(u) = []) (List.init n Fun.id) in
      let atom_of_leaf =
        List.filter_map (fun u -> t.leaf_atom.(u)) leaves
      in
      let bijective =
        List.length leaves = m
        && List.length atom_of_leaf = m
        && List.sort_uniq Stdlib.compare atom_of_leaf = List.init m Fun.id
        && Array.for_all
             (fun u ->
               match t.leaf_atom.(u) with
               | Some _ -> t.children.(u) = []
               | None -> true)
             (Array.of_list (List.init n Fun.id))
      in
      if not bijective then false
      else begin
        (* Recompute definitional labels and compare. *)
        let rebuilt = ref true in
        let free_set = Iset.of_list cq.Cq.free in
        let total_occ = Hashtbl.create 64 in
        Array.iter
          (fun atom ->
            List.iter
              (fun v ->
                Hashtbl.replace total_occ v
                  (1 + Option.value ~default:0 (Hashtbl.find_opt total_occ v)))
              (Cq.atom_vars atom))
          atoms;
        let rec check u : (int * int) list =
          let own =
            match t.leaf_atom.(u) with
            | Some j -> Cq.atom_vars atoms.(j)
            | None -> []
          in
          let counts = Hashtbl.create 16 in
          let bump v d =
            Hashtbl.replace counts v
              (d + Option.value ~default:0 (Hashtbl.find_opt counts v))
          in
          List.iter (fun v -> bump v 1) own;
          List.iter (fun c -> List.iter (fun (v, d) -> bump v d) (check c))
            t.children.(u);
          let expected_working =
            match t.leaf_atom.(u) with
            | Some j -> Iset.of_list (Cq.atom_vars atoms.(j))
            | None ->
              List.fold_left
                (fun acc c -> Iset.union acc t.projected.(c))
                Iset.empty t.children.(u)
          in
          let occurs_outside v =
            Iset.mem v free_set
            || Option.value ~default:0 (Hashtbl.find_opt counts v)
               < Hashtbl.find total_occ v
          in
          let expected_projected =
            if u = t.root then Iset.inter t.working.(u) free_set
            else Iset.filter occurs_outside t.working.(u)
          in
          if not (Iset.equal expected_working t.working.(u)) then rebuilt := false;
          if not (Iset.equal expected_projected t.projected.(u)) then
            rebuilt := false;
          Hashtbl.fold (fun v d acc -> (v, d) :: acc) counts []
        in
        ignore (check t.root);
        (* The target schema must survive to the root. *)
        !rebuilt && Iset.subset free_set t.working.(t.root)
      end
    end
  end

let exact_join_width ?(max_atoms = 14) cq =
  let atoms = Array.of_list cq.Cq.atoms in
  let m = Array.length atoms in
  if m = 0 || m > max_atoms then None
  else begin
    let atom_vars = Array.map (fun a -> Iset.of_list (Cq.atom_vars a)) atoms in
    let free = Iset.of_list cq.Cq.free in
    let full = (1 lsl m) - 1 in
    (* The projected label of any subtree over atom set [mask]: variables
       occurring both inside and outside, plus the target schema. *)
    let vars_of mask =
      let acc = ref Iset.empty in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) <> 0 then acc := Iset.union !acc atom_vars.(i)
      done;
      !acc
    in
    let live mask =
      let inside = vars_of mask and outside = vars_of (full lxor mask) in
      Iset.union (Iset.inter inside outside) (Iset.inter inside free)
    in
    let live_table = Array.init (full + 1) live in
    let width = Array.make (full + 1) max_int in
    let popcount mask =
      let rec go mask acc =
        if mask = 0 then acc else go (mask lsr 1) (acc + (mask land 1))
      in
      go mask 0
    in
    for mask = 1 to full do
      if popcount mask = 1 then begin
        let rec bit i = if mask land (1 lsl i) <> 0 then i else bit (i + 1) in
        width.(mask) <- Iset.cardinal atom_vars.(bit 0)
      end
      else begin
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let other = mask lxor !sub in
          if !sub < other then begin
            (* Each unordered partition once. *)
            let working =
              Iset.cardinal (Iset.union live_table.(!sub) live_table.(other))
            in
            let candidate =
              max working (max width.(!sub) width.(other))
            in
            if candidate < width.(mask) then width.(mask) <- candidate
          end;
          sub := (!sub - 1) land mask
        done
      end
    done;
    Some width.(full)
  end

let heuristic ?rng cq =
  let jg = Joingraph.build cq in
  let ord = Graphlib.Treewidth.best_order ?rng jg.Joingraph.graph in
  let td = Td.of_elimination_order jg.Joingraph.graph ord in
  of_tree_decomposition cq jg td

let pp ppf t =
  Format.fprintf ppf "@[<v>join-expression tree (%d nodes, width %d, root %d)"
    (node_count t) (width t) t.root;
  for u = 0 to node_count t - 1 do
    Format.fprintf ppf "@,  node %d parent=%d%s Lw={%a} Lp={%a}" u t.parent.(u)
      (match t.leaf_atom.(u) with
      | Some j -> Printf.sprintf " atom#%d" j
      | None -> "")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      (Iset.elements t.working.(u))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      (Iset.elements t.projected.(u))
  done;
  Format.fprintf ppf "@]"
