(** Project-join (conjunctive) queries.

    A query is [pi_{free}(R_1 |><| ... |><| R_m)]: a list of atoms — each a
    relation symbol applied to variables — plus the target schema [free]
    (the paper's {i S_Q}). Boolean queries are emulated, exactly as in the
    paper, by a single-variable target schema; truly empty target schemas
    are also supported.

    Invariant (checked by {!check}): every free variable occurs in some
    atom, and atom variable lists are non-empty. *)

type atom = { rel : string; vars : int list }
(** One occurrence of a relation. A variable may repeat inside an atom
    (e.g. [edge(x,x)]); the evaluator enforces the implied equality. *)

type t = { atoms : atom list; free : int list }

val make : atoms:atom list -> free:int list -> t
(** Builds and {!check}s a query. *)

val check : t -> (unit, string) result
(** Diagnoses violated invariants. *)

val atom_vars : atom -> int list
(** Distinct variables of an atom, in first-occurrence order. *)

val vars : t -> int list
(** All variables, sorted, without duplicates. *)

val var_count : t -> int
val atom_count : t -> int
val is_boolean : t -> bool
(** True when at most one variable is kept — the paper's Boolean setup. *)

val occurrences : t -> (int, int list) Hashtbl.t
(** Maps each variable to the indices (0-based, in listing order) of the
    atoms it occurs in, ascending. *)

val min_occur : t -> (int, int) Hashtbl.t
(** First atom index containing each variable — the paper's [min_occur]. *)

val max_occur : t -> (int, int) Hashtbl.t
(** Last atom index containing each variable — the paper's [max_occur]. *)

val permute_atoms : t -> int array -> t
(** [permute_atoms q rho] lists atom [rho.(i)] at position [i].
    @raise Invalid_argument if [rho] is not a permutation. *)

val pp : Format.formatter -> t -> unit
(** Renders as [pi_{v..}(edge(v0,v1) |><| ...)]. *)
