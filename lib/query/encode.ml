module Relation = Relalg.Relation
module Schema = Relalg.Schema

type mode = Boolean | Emulated_boolean | Fraction of float

let edge_relation_name = "edge"

let free_variables ~mode ~rng ~vars_in_listing_order =
  match mode with
  | Boolean -> []
  | Emulated_boolean -> (
    match vars_in_listing_order with
    | [] -> invalid_arg "Encode: no variables"
    | v :: _ -> [ v ])
  | Fraction f ->
    let rng =
      match rng with
      | Some rng -> rng
      | None -> invalid_arg "Encode: Fraction mode needs ~rng"
    in
    let distinct = List.sort_uniq Stdlib.compare vars_in_listing_order in
    let wanted =
      int_of_float (Float.round (f *. float_of_int (List.length distinct)))
    in
    let shuffled = Graphlib.Rng.shuffle_list rng distinct in
    List.sort Stdlib.compare (List.filteri (fun i _ -> i < wanted) shuffled)

let coloring_query ?(mode = Emulated_boolean) ?rng ~edges () =
  if edges = [] then invalid_arg "Encode.coloring_query: no edges";
  let atoms =
    List.map (fun (u, v) -> { Cq.rel = edge_relation_name; vars = [ u; v ] }) edges
  in
  let vars_in_listing_order = List.concat_map (fun (u, v) -> [ u; v ]) edges in
  let free = free_variables ~mode ~rng ~vars_in_listing_order in
  Cq.make ~atoms ~free

let coloring_query_of_graph ?mode ?rng g =
  coloring_query ?mode ?rng ~edges:(Graphlib.Graph.edges g) ()

let coloring_database ?(k = 3) () =
  let rows = ref [] in
  for a = 1 to k do
    for b = 1 to k do
      if a <> b then rows := [ a; b ] :: !rows
    done
  done;
  let db = Database.create () in
  Database.add db edge_relation_name
    (Relation.of_list (Schema.of_list [ 0; 1 ]) !rows);
  db

let polarity_string clause =
  String.concat ""
    (List.map (fun lit -> if lit.Cnf.positive then "1" else "0") clause)

let sat_relation_name clause = "sat_" ^ polarity_string clause

let check_distinct_clause clause =
  let vars = List.map (fun lit -> lit.Cnf.var) clause in
  if List.length (List.sort_uniq Stdlib.compare vars) <> List.length vars then
    invalid_arg "Encode.sat_query: repeated variable within a clause"

let sat_query ?(mode = Emulated_boolean) ?rng cnf =
  if cnf.Cnf.clauses = [] then invalid_arg "Encode.sat_query: no clauses";
  let atoms =
    List.map
      (fun clause ->
        check_distinct_clause clause;
        {
          Cq.rel = sat_relation_name clause;
          vars = List.map (fun lit -> lit.Cnf.var) clause;
        })
      cnf.Cnf.clauses
  in
  let vars_in_listing_order =
    List.concat_map (List.map (fun lit -> lit.Cnf.var)) cnf.Cnf.clauses
  in
  let free = free_variables ~mode ~rng ~vars_in_listing_order in
  Cq.make ~atoms ~free

(* All assignments over {0,1}^k satisfying the polarity pattern: every
   row except the unique falsifying one. *)
let pattern_relation clause =
  let k = List.length clause in
  let polarities = Array.of_list (List.map (fun lit -> lit.Cnf.positive) clause) in
  let schema = Schema.of_list (List.init k Fun.id) in
  let rel = Relation.create ~size_hint:(1 lsl k) schema in
  for code = 0 to (1 lsl k) - 1 do
    let row = Array.init k (fun i -> (code lsr i) land 1) in
    let satisfied =
      Array.exists2 (fun value positive -> (value = 1) = positive) row polarities
    in
    if satisfied then ignore (Relation.add rel row)
  done;
  rel

let sat_database cnf =
  let db = Database.create () in
  List.iter
    (fun clause ->
      let name = sat_relation_name clause in
      if not (Database.mem db name) then Database.add db name (pattern_relation clause))
    cnf.Cnf.clauses;
  db

let variable_namer i = Printf.sprintf "v%d" (i + 1)
