(** CNF formulas and random k-SAT instances.

    Section 7 of the paper reports that the 3-SAT and 2-SAT query families
    behave like the 3-COLOR family; this module provides those instances.
    Variables are numbered from 0; a literal is a variable paired with a
    polarity. *)

type literal = { var : int; positive : bool }
type clause = literal list
type t = { num_vars : int; clauses : clause list }

val make : num_vars:int -> clauses:clause list -> t
(** @raise Invalid_argument on an out-of-range variable or empty clause. *)

val random_ksat : rng:Graphlib.Rng.t -> k:int -> num_vars:int -> num_clauses:int -> t
(** Uniform k-SAT: each clause draws [k] distinct variables and
    independent random polarities. Duplicate clauses are allowed, as in
    the standard fixed-clause-length model. *)

val eval : t -> bool array -> bool
(** Truth of the formula under an assignment. *)

val brute_force_satisfiable : t -> bool
(** Exhaustive check; exponential, for cross-validation on small
    instances only. @raise Invalid_argument beyond 22 variables. *)

val pp : Format.formatter -> t -> unit
