type parsed = {
  query : Cq.t;
  head_name : string;
  namer : int -> string;
  variable_names : string list;
}

type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "query parse error at offset %d: %s" e.position e.message

exception Err of error

let fail position message = raise (Err { position; message })

(* ------------------------------------------------------------------ *)

type token = Ident of string | Lparen | Rparen | Comma | Turnstile | Period

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '%' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '(' then (tokens := (!i, Lparen) :: !tokens; incr i)
    else if c = ')' then (tokens := (!i, Rparen) :: !tokens; incr i)
    else if c = ',' then (tokens := (!i, Comma) :: !tokens; incr i)
    else if c = '.' then (tokens := (!i, Period) :: !tokens; incr i)
    else if c = ':' then begin
      if !i + 1 < n && src.[!i + 1] = '-' then begin
        tokens := (!i, Turnstile) :: !tokens;
        i := !i + 2
      end
      else fail !i "expected ':-'"
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      tokens := (start, Ident (String.sub src start (!i - start))) :: !tokens
    end
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)

type state = { mutable tokens : (int * token) list; length : int }

let advance st =
  match st.tokens with
  | [] -> fail st.length "unexpected end of input"
  | t :: rest ->
    st.tokens <- rest;
    t

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let expect st expected describe =
  let position, token = advance st in
  if token <> expected then fail position ("expected " ^ describe)

let ident st =
  match advance st with
  | _, Ident name -> name
  | position, _ -> fail position "expected an identifier"

(* name(arg, arg, ...) with a possibly empty argument list. *)
let atom st =
  let name = ident st in
  expect st Lparen "'('";
  let args =
    match peek st with
    | Some (_, Rparen) ->
      ignore (advance st);
      []
    | _ ->
      let rec more acc =
        let arg = ident st in
        match advance st with
        | _, Comma -> more (arg :: acc)
        | _, Rparen -> List.rev (arg :: acc)
        | position, _ -> fail position "expected ',' or ')'"
      in
      more []
  in
  (name, args)

let query src =
  try
    let st = { tokens = tokenize src; length = String.length src } in
    let head_name, head_args = atom st in
    expect st Turnstile "':-'";
    let rec body acc =
      let a = atom st in
      match peek st with
      | Some (_, Comma) ->
        ignore (advance st);
        body (a :: acc)
      | _ -> List.rev (a :: acc)
    in
    let atoms = body [] in
    (match peek st with
    | Some (_, Period) -> ignore (advance st)
    | _ -> ());
    (match peek st with
    | Some (position, _) -> fail position "trailing input after query"
    | None -> ());
    (* Number variables in first-appearance order (head first). *)
    let numbering = Hashtbl.create 16 in
    let names = ref [] in
    let number name =
      match Hashtbl.find_opt numbering name with
      | Some v -> v
      | None ->
        let v = Hashtbl.length numbering in
        Hashtbl.add numbering name v;
        names := name :: !names;
        v
    in
    let free = List.map number head_args in
    let cq_atoms =
      List.map
        (fun (rel, args) -> { Cq.rel; vars = List.map number args })
        atoms
    in
    let variable_names = List.rev !names in
    let name_array = Array.of_list variable_names in
    let namer v =
      if v >= 0 && v < Array.length name_array then name_array.(v)
      else Printf.sprintf "v%d" v
    in
    match Cq.check { Cq.atoms = cq_atoms; free } with
    | Error msg -> fail 0 msg
    | Ok () ->
      Ok
        {
          query = { Cq.atoms = cq_atoms; free };
          head_name;
          namer;
          variable_names;
        }
  with Err e -> Error e

let query_exn src =
  match query src with
  | Ok parsed -> parsed
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
