type t = {
  graph : Graphlib.Graph.t;
  to_vertex : (int, int) Hashtbl.t;
  of_vertex : int array;
}

let build cq =
  let variables = Cq.vars cq in
  let to_vertex = Hashtbl.create (List.length variables) in
  List.iteri (fun i v -> Hashtbl.add to_vertex v i) variables;
  let of_vertex = Array.of_list variables in
  let graph = Graphlib.Graph.create (List.length variables) in
  let clique vs =
    Graphlib.Graph.complete_among graph
      (List.map (Hashtbl.find to_vertex) vs)
  in
  List.iter (fun atom -> clique (Cq.atom_vars atom)) cq.Cq.atoms;
  clique cq.Cq.free;
  { graph; to_vertex; of_vertex }

let variable_order_of t ord = Array.map (fun vtx -> t.of_vertex.(vtx)) ord

let treewidth_upper_bound cq =
  let jg = build cq in
  Graphlib.Treewidth.upper_bound jg.graph

let mcs_variable_order ?rng cq =
  let jg = build cq in
  let initial = List.map (Hashtbl.find jg.to_vertex) cq.Cq.free in
  let ord = Graphlib.Order.mcs ~initial ?rng jg.graph in
  variable_order_of jg ord
