(** Databases: named base relations, and atom evaluation.

    An atom [r(x, y, ...)] evaluates positionally against the base
    relation named [r]: column [i] of the base relation binds the [i]-th
    variable of the atom. Repeated variables inside an atom impose
    equality between the corresponding columns. The resulting relation's
    schema is the atom's distinct variables in first-occurrence order. *)

type t

val create : unit -> t

val add : t -> string -> Relalg.Relation.t -> unit
(** Register (or replace) a base relation. *)

val find : t -> string -> Relalg.Relation.t
(** @raise Not_found for an unregistered name. *)

val mem : t -> string -> bool
val names : t -> string list

val eval_atom : ?ctx:Relalg.Ctx.t -> t -> Cq.atom -> Relalg.Relation.t
(** Materialize one atom occurrence as a relation over its variables,
    stored in the context's backend. With telemetry in the context, the
    materialization runs in an [op.scan] span carrying the relation name
    and base/output cardinalities.
    @raise Invalid_argument if the atom's arity does not match the base
    relation's. *)

val save_dir : t -> string -> unit
(** Persist as a directory of [<name>.tsv] files ({!Relalg.Io} format),
    creating the directory if needed. Relation names must be usable as
    file names. *)

val load_dir : string -> t
(** Load every [*.tsv] in a directory; the relation name is the file
    name without the extension.
    @raise Sys_error on an unreadable directory,
    @raise Failure on a malformed file. *)
