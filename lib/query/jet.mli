(** Join-expression trees (Section 5).

    A join-expression tree describes a bottom-up evaluation order for a
    project-join query: leaves are the query's atoms, and every node [u]
    carries a {e working label} [L_w(u)] (the attributes of the relation
    computed at [u]) and a {e projected label} [L_p(u)] (the attributes
    kept after projecting early — those occurring outside [u]'s subtree,
    plus the target schema). The width of the tree is the largest working
    label; the {e join width} of the query is the least width over all
    its join-expression trees, and Theorem 1 states it equals the join
    graph's treewidth plus one.

    This module implements the paper's Algorithms 1–3: converting a
    join-expression tree to a tree decomposition of the join graph
    (Algorithm 1 / Lemma 1), simplifying a tree decomposition by
    mark-and-sweep (Algorithm 2 / Lemma 2), and converting a simplified
    decomposition back into a join-expression tree (Algorithm 3 /
    Lemma 3). Labels are the {e definitional} ones — projected labels are
    recomputed from actual outside-occurrences, which can only shrink
    widths relative to Algorithm 3's formula. *)

module Iset = Graphlib.Graph.Iset

type t = {
  parent : int array;            (** [-1] at the root *)
  children : int list array;
  working : Iset.t array;        (** [L_w], over query variables *)
  projected : Iset.t array;      (** [L_p] *)
  leaf_atom : int option array;  (** atom index carried by each leaf *)
  root : int;
}

val node_count : t -> int

val width : t -> int
(** Maximum working-label size. *)

val is_valid : Cq.t -> t -> bool
(** Structural tree checks, a bijection between leaves and atoms, and the
    label equations: leaf working labels are their atom's variables,
    internal working labels are the union of the children's projected
    labels, and projected labels are exactly the working attributes that
    occur outside the subtree (or in the target schema); the root keeps
    the target schema. *)

val mark_and_sweep :
  Cq.t -> Joingraph.t -> Graphlib.Treedec.t ->
  Graphlib.Treedec.t * int array * int
(** Algorithm 2. Returns the simplified decomposition, the mapping from
    atom index to the (surviving) node holding it, and the node chosen
    for the target schema. Deviation from the paper, needed for
    disconnected join graphs: when removing empty bags splits the tree,
    the components (which provably share no surviving attribute) are
    re-linked by bridge edges, keeping the result a valid decomposition
    of the same width. *)

val of_tree_decomposition : Cq.t -> Joingraph.t -> Graphlib.Treedec.t -> t
(** Algorithm 3 over a mark-and-sweep-simplified decomposition, with
    definitional labels. The result has width at most the decomposition's
    width plus one (Lemma 3). *)

val to_tree_decomposition : Cq.t -> Joingraph.t -> t -> Graphlib.Treedec.t
(** Algorithm 1: reinterpret working labels as bags. The result is a
    valid tree decomposition of the join graph with width exactly
    [width t - 1] (Lemma 1). *)

val heuristic : ?rng:Graphlib.Rng.t -> Cq.t -> t
(** A good join-expression tree: build the join graph, find the best
    heuristic elimination order, decompose, and convert. Its width is an
    upper bound on the join width. *)

val exact_join_width : ?max_atoms:int -> Cq.t -> int option
(** The exact join width, by dynamic programming over atom subsets: a
    subtree over atom set [S] has a fixed projected label (the variables
    of [S] occurring outside [S], plus the target schema) regardless of
    its internal shape, so
    [W(S) = min over binary partitions (T, S\T) of
      max (W T) (W (S\T)) |live T ∪ live (S\T)|].
    Exponential ([O(3^m)]); [None] beyond [max_atoms] (default 14).
    By Theorem 1 the result equals the join graph's treewidth plus one —
    verified independently in the test suite. *)

val pp : Format.formatter -> t -> unit
