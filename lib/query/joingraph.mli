(** The join graph of a query (Section 5).

    Nodes are the query's variables; each atom contributes a clique over
    its variables, and the target schema contributes one more clique.
    Because query variables are arbitrary integers while {!Graphlib.Graph}
    vertices are dense, the construction also returns the mapping. *)

type t = {
  graph : Graphlib.Graph.t;
  to_vertex : (int, int) Hashtbl.t;  (** query variable -> graph vertex *)
  of_vertex : int array;             (** graph vertex -> query variable *)
}

val build : Cq.t -> t

val variable_order_of : t -> Graphlib.Order.t -> int array
(** Translate a vertex elimination order back to query variables. *)

val treewidth_upper_bound : Cq.t -> int
val mcs_variable_order : ?rng:Graphlib.Rng.t -> Cq.t -> int array
(** The paper's variable order for bucket elimination: MCS on the join
    graph, seeded with the target schema's variables. Returned over query
    variables, ascending paper numbering (position [0] is numbered 1). *)
