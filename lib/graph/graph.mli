(** Simple undirected graphs over vertices [0 .. order-1].

    These are the 3-COLOR instances of the paper and, separately, the join
    graphs of queries. Self-loops and parallel edges are rejected. *)

module Iset : Set.S with type elt = int

type t

val create : int -> t
(** An edgeless graph with the given number of vertices.
    @raise Invalid_argument on a negative order. *)

val order : t -> int
(** Number of vertices. *)

val size : t -> int
(** Number of edges. *)

val density : t -> float
(** Edges over vertices, the paper's scaling parameter [m/n]. *)

val add_edge : t -> int -> int -> bool
(** Add an undirected edge; returns [false] if it was already present.
    @raise Invalid_argument on a self-loop or an out-of-range endpoint. *)

val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> Iset.t
val degree : t -> int -> int

val vertices : t -> int list
val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v], sorted lexicographically. *)

val of_edges : int -> (int * int) list -> t
(** Graph of the given order with the listed edges (duplicates merged). *)

val copy : t -> t
val equal : t -> t -> bool

val is_connected : t -> bool
(** True for the empty and one-vertex graphs. *)

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val induced_subgraph : t -> Iset.t -> t * int array
(** [induced_subgraph g vs] relabels the kept vertices densely; the
    returned array maps new indices back to the original vertices. *)

val complete_among : t -> int list -> unit
(** Add every edge between the listed vertices (clique completion, used by
    elimination and by join-graph construction). *)

val pp : Format.formatter -> t -> unit
