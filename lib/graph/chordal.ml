module Iset = Graph.Iset

(* Eliminating along (the reverse of) an MCS order is fill-free iff the
   graph is chordal: check that each vertex's later neighbors already form
   a clique around the earliest of them. *)
let zero_fill g ord =
  let n = Array.length ord in
  let number = Array.make (Graph.order g) 0 in
  Array.iteri (fun i v -> number.(v) <- i) ord;
  let ok = ref true in
  for i = n - 1 downto 0 do
    let v = ord.(i) in
    let earlier = Iset.filter (fun w -> number.(w) < i) (Graph.neighbors g v) in
    match Iset.elements earlier with
    | [] -> ()
    | ws ->
      let pivot =
        List.fold_left
          (fun best w -> if number.(w) > number.(best) then w else best)
          (List.hd ws) ws
      in
      List.iter
        (fun w -> if w <> pivot && not (Graph.has_edge g pivot w) then ok := false)
        ws
  done;
  !ok

let is_chordal g = zero_fill g (Order.mcs g)

let perfect_elimination_order g =
  let ord = Order.mcs g in
  if zero_fill g ord then Some ord else None

let max_cliques g =
  match perfect_elimination_order g with
  | None -> invalid_arg "Chordal.max_cliques: graph is not chordal"
  | Some ord ->
    let number = Array.make (Graph.order g) 0 in
    Array.iteri (fun i v -> number.(v) <- i) ord;
    let candidate v =
      let earlier =
        Iset.filter (fun w -> number.(w) < number.(v)) (Graph.neighbors g v)
      in
      List.sort Stdlib.compare (v :: Iset.elements earlier)
    in
    let cliques = List.map candidate (Graph.vertices g) in
    let subsumed c =
      List.exists
        (fun c' ->
          c != c'
          && List.length c < List.length c'
          && List.for_all (fun x -> List.mem x c') c)
        cliques
    in
    List.sort_uniq Stdlib.compare (List.filter (fun c -> not (subsumed c)) cliques)
