type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bf03635 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let sample_distinct_pair t bound =
  if bound < 2 then invalid_arg "Rng.sample_distinct_pair: bound < 2";
  let u = int t bound in
  let v = int t (bound - 1) in
  let v = if v >= u then v + 1 else v in
  (min u v, max u v)
