(** Local search over elimination orders (the paper's §7 pointer to
    treewidth approximation [6], and the classic simulated-annealing
    counterpart of its cost-based citations [25]).

    Starting from a heuristic order, repeatedly swap two positions and
    accept the move if it does not increase the induced width — or, at
    positive temperature, with the Metropolis probability. A cheap way
    to shave a level or two of width off MCS/min-fill orders on
    instances where the greedy heuristics get stuck. *)

type params = {
  iterations : int;        (** swap proposals (default 2000) *)
  initial_temperature : float;  (** in width units (default 1.0) *)
  cooling : float;         (** per-iteration multiplier (default 0.995) *)
}

val default_params : params

val improve :
  ?params:params -> rng:Rng.t -> Graph.t -> Order.t -> Order.t * int
(** [improve ~rng g order] returns an order whose induced width is at
    most the input's, and that width. The input is not mutated. *)

val anneal : ?params:params -> rng:Rng.t -> Graph.t -> Order.t * int
(** Start from the best greedy heuristic and improve. *)
