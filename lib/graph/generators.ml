let random ~rng ~n ~m =
  let possible = n * (n - 1) / 2 in
  if m > possible then
    invalid_arg
      (Printf.sprintf "Generators.random: %d edges requested, only %d possible" m
         possible);
  let g = Graph.create n in
  let rec fill remaining =
    if remaining > 0 then begin
      let u, v = Rng.sample_distinct_pair rng n in
      if Graph.add_edge g u v then fill (remaining - 1) else fill remaining
    end
  in
  fill m;
  g

let random_density ~rng ~n ~density =
  let m = int_of_float (Float.round (density *. float_of_int n)) in
  random ~rng ~n ~m

let path n =
  let g = Graph.create (n + 1) in
  for i = 0 to n - 1 do
    ignore (Graph.add_edge g i (i + 1))
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need at least 3 vertices";
  let g = path (n - 1) in
  ignore (Graph.add_edge g (n - 1) 0);
  g

let clique n =
  let g = Graph.create n in
  Graph.complete_among g (Graph.vertices g);
  g

let star n =
  let g = Graph.create (n + 1) in
  for leaf = 1 to n do
    ignore (Graph.add_edge g 0 leaf)
  done;
  g

let grid rows cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge g (id r c) (id r (c + 1)));
      if r + 1 < rows then ignore (Graph.add_edge g (id r c) (id (r + 1) c))
    done
  done;
  g

(* Path vertices are 0..n, the pendant of path vertex i is n+1+i. *)
let augmented_path n =
  let g = Graph.create (2 * (n + 1)) in
  for i = 0 to n - 1 do
    ignore (Graph.add_edge g i (i + 1))
  done;
  for i = 0 to n do
    ignore (Graph.add_edge g i (n + 1 + i))
  done;
  g

(* Rung i joins rail vertices 2i (left) and 2i+1 (right). *)
let ladder n =
  if n < 1 then invalid_arg "Generators.ladder: need at least one rung";
  let g = Graph.create (2 * n) in
  for i = 0 to n - 1 do
    ignore (Graph.add_edge g (2 * i) ((2 * i) + 1));
    if i + 1 < n then begin
      ignore (Graph.add_edge g (2 * i) (2 * (i + 1)));
      ignore (Graph.add_edge g ((2 * i) + 1) ((2 * (i + 1)) + 1))
    end
  done;
  g

(* Ladder vertices keep their ids; the pendant of vertex v is 2n + v. *)
let augmented_ladder n =
  let base = ladder n in
  let g = Graph.create (4 * n) in
  List.iter (fun (u, v) -> ignore (Graph.add_edge g u v)) (Graph.edges base);
  for v = 0 to (2 * n) - 1 do
    ignore (Graph.add_edge g v ((2 * n) + v))
  done;
  g

let augmented_circular_ladder n =
  if n < 3 then
    invalid_arg "Generators.augmented_circular_ladder: need at least 3 rungs";
  let g = augmented_ladder n in
  ignore (Graph.add_edge g 0 (2 * (n - 1)));
  ignore (Graph.add_edge g 1 ((2 * (n - 1)) + 1));
  g

(* Appendix A lists the pentagon's atoms as
   edge(v1,v2), edge(v1,v5), edge(v4,v5), edge(v3,v4), edge(v2,v3);
   vertices are 0-based here. *)
let pentagon_edges = [ (0, 1); (0, 4); (3, 4); (2, 3); (1, 2) ]

let pentagon = Graph.of_edges 5 pentagon_edges
