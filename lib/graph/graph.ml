module Iset = Set.Make (Int)

type t = { n : int; mutable m : int; adj : Iset.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative order";
  { n; m = 0; adj = Array.make (max n 1) Iset.empty }

let order t = t.n
let size t = t.m

let density t = if t.n = 0 then 0. else float_of_int t.m /. float_of_int t.n

let check_vertex t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of range [0,%d)" v t.n)

let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if Iset.mem v t.adj.(u) then false
  else begin
    t.adj.(u) <- Iset.add v t.adj.(u);
    t.adj.(v) <- Iset.add u t.adj.(v);
    t.m <- t.m + 1;
    true
  end

let has_edge t u v =
  check_vertex t u;
  check_vertex t v;
  Iset.mem v t.adj.(u)

let neighbors t v =
  check_vertex t v;
  t.adj.(v)

let degree t v = Iset.cardinal (neighbors t v)

let vertices t = List.init t.n Fun.id

let edges t =
  List.concat_map
    (fun u -> Iset.fold (fun v acc -> if u < v then (u, v) :: acc else acc) t.adj.(u) [])
    (vertices t)
  |> List.sort Stdlib.compare

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> ignore (add_edge g u v)) edge_list;
  g

let copy t = { t with adj = Array.copy t.adj }

let equal a b = a.n = b.n && a.m = b.m && Array.for_all2 Iset.equal a.adj b.adj

let is_connected t =
  if t.n <= 1 then true
  else begin
    let seen = Array.make t.n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Iset.iter visit t.adj.(v)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let fold_vertices f t init = List.fold_left (fun acc v -> f v acc) init (vertices t)
let fold_edges f t init = List.fold_left (fun acc (u, v) -> f u v acc) init (edges t)

let induced_subgraph t vs =
  let kept = Array.of_list (Iset.elements vs) in
  let back = Hashtbl.create (Array.length kept) in
  Array.iteri (fun i v -> Hashtbl.add back v i) kept;
  let g = create (Array.length kept) in
  Array.iteri
    (fun i v ->
      Iset.iter
        (fun w ->
          match Hashtbl.find_opt back w with
          | Some j when i < j -> ignore (add_edge g i j)
          | _ -> ())
        t.adj.(v))
    kept;
  (g, kept)

let complete_among t vs =
  let rec pairs = function
    | [] -> ()
    | u :: rest ->
      List.iter (fun v -> ignore (add_edge t u v)) rest;
      pairs rest
  in
  pairs vs

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d)[%a]" t.n t.m
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges t)
