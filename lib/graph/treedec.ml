module Iset = Graph.Iset

type t = { bags : Iset.t array; tree : Graph.t }

let width t =
  Array.fold_left (fun acc bag -> max acc (Iset.cardinal bag)) 0 t.bags - 1

let node_count t = Array.length t.bags

let is_tree g =
  Graph.is_connected g && Graph.size g = max 0 (Graph.order g - 1)

let is_valid g t =
  let n = Graph.order g in
  let covers_vertices =
    List.for_all
      (fun v -> Array.exists (fun bag -> Iset.mem v bag) t.bags)
      (Graph.vertices g)
  in
  let covers_edges =
    List.for_all
      (fun (u, v) ->
        Array.exists (fun bag -> Iset.mem u bag && Iset.mem v bag) t.bags)
      (Graph.edges g)
  in
  let connected_occurrences v =
    let holders =
      List.filter
        (fun i -> Iset.mem v t.bags.(i))
        (List.init (node_count t) Fun.id)
    in
    match holders with
    | [] -> true
    | first :: _ ->
      let holder_set = Iset.of_list holders in
      let seen = Hashtbl.create 16 in
      let rec visit i =
        if not (Hashtbl.mem seen i) then begin
          Hashtbl.add seen i ();
          Iset.iter
            (fun j -> if Iset.mem j holder_set then visit j)
            (Graph.neighbors t.tree i)
        end
      in
      visit first;
      List.for_all (Hashtbl.mem seen) holders
  in
  Array.length t.bags = Graph.order t.tree
  && is_tree t.tree && covers_vertices && covers_edges
  && List.for_all connected_occurrences (List.init n Fun.id)

let of_elimination_order g ord =
  let n = Graph.order g in
  if n = 0 then { bags = [||]; tree = Graph.create 0 }
  else begin
    let fill = Order.fill_graph g ord in
    let number = Array.make n 0 in
    Array.iteri (fun i v -> number.(v) <- i) ord;
    (* Node i of the decomposition is the bag of vertex ord.(i). *)
    let bag_of i =
      let v = ord.(i) in
      let lower = Iset.filter (fun w -> number.(w) < i) (Graph.neighbors fill v) in
      Iset.add v lower
    in
    let bags = Array.init n bag_of in
    let tree = Graph.create n in
    for i = 1 to n - 1 do
      let lower = Iset.remove ord.(i) bags.(i) in
      let parent =
        if Iset.is_empty lower then i - 1
        else Iset.fold (fun w best -> max number.(w) best) lower (-1)
      in
      ignore (Graph.add_edge tree i parent)
    done;
    { bags; tree }
  end

let trivial g =
  {
    bags = [| Iset.of_list (Graph.vertices g) |];
    tree = Graph.create 1;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>tree decomposition (%d nodes, width %d)" (node_count t)
    (width t);
  Array.iteri
    (fun i bag ->
      Format.fprintf ppf "@,  bag %d: {%a}  nbrs: %a" i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (Iset.elements bag)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        (Iset.elements (Graph.neighbors t.tree i)))
    t.bags;
  Format.fprintf ppf "@]"
