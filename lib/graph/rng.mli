(** Deterministic randomness.

    Every random structure in this repository (graphs, CNFs, tie-breaks in
    the greedy heuristics) draws from an explicit [Rng.t] seeded by an
    integer, so each experiment row is reproducible bit-for-bit. *)

type t

val make : int -> t
(** A generator seeded by the given integer. *)

val split : t -> t
(** A new generator whose stream is independent of (but determined by)
    the current state of the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val sample_distinct_pair : t -> int -> int * int
(** Two distinct integers below the bound, unordered (smaller first).
    @raise Invalid_argument if the bound is less than 2. *)
