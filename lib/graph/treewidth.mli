(** Treewidth: bounds and exact computation.

    Finding the treewidth is NP-hard (Arnborg–Corneil–Proskurowski), which
    is exactly why the paper falls back on the MCS heuristic; the exact
    solver here exists to validate Theorems 1 and 2 on small instances
    and to measure how far the heuristics stray. *)

val upper_bound : ?rng:Rng.t -> Graph.t -> int
(** Best induced width among the MCS, min-degree and min-fill orders. *)

val lower_bound : Graph.t -> int
(** The degeneracy (maximum over the elimination process of the minimum
    degree), a classic treewidth lower bound. *)

val exact : ?max_order:int -> Graph.t -> int option
(** Exact treewidth by memoized search over elimination prefixes.
    Exponential in the number of vertices; returns [None] when the graph
    has more than [max_order] (default 24) vertices. *)

val best_order : ?rng:Rng.t -> Graph.t -> Order.t
(** The heuristic order realizing {!upper_bound}. *)
