(** Tree decompositions.

    A tree decomposition of a graph [G = (V, E)] is a tree whose nodes
    carry bags of vertices such that (1) the bags cover [V], (2) every
    edge of [E] lies inside some bag, and (3) for each vertex the bags
    containing it form a connected subtree. Its width is the largest bag
    size minus one (Section 5 of the paper). *)

type t = {
  bags : Graph.Iset.t array;  (** bag of each decomposition node *)
  tree : Graph.t;             (** the decomposition tree itself *)
}

val width : t -> int
(** Largest bag size minus one; [-1] for a decomposition with no nodes. *)

val node_count : t -> int

val is_valid : Graph.t -> t -> bool
(** Checks all three tree-decomposition conditions against the graph,
    and that [tree] is in fact a tree (connected and acyclic). *)

val of_elimination_order : Graph.t -> Order.t -> t
(** The standard decomposition read off an elimination order: the bag of
    vertex [v] is [v] plus its lower-numbered neighbors in the fill
    graph; each non-root bag hangs off the bag of the highest-numbered
    vertex below it. Width equals {!Order.induced_width} of the order. *)

val trivial : Graph.t -> t
(** The one-bag decomposition (width [n-1]). *)

val pp : Format.formatter -> t -> unit
