module Iset = Graph.Iset

type t = int array

let is_permutation g ord =
  Array.length ord = Graph.order g
  &&
  let seen = Array.make (Graph.order g) false in
  Array.for_all
    (fun v ->
      v >= 0 && v < Graph.order g && not seen.(v) && (seen.(v) <- true; true))
    ord

(* Pick an element of [candidates] with the maximal [score]; break ties
   with [rng] when given, else by smallest vertex id (so the default is
   deterministic). *)
let argmax ?rng ~score candidates =
  let best, ties =
    List.fold_left
      (fun (best, ties) v ->
        let s = score v in
        if s > best then (s, [ v ])
        else if s = best then (best, v :: ties)
        else (best, ties))
      (min_int, []) candidates
  in
  ignore best;
  match (rng, ties) with
  | _, [] -> invalid_arg "Order.argmax: no candidates"
  | None, ties -> List.fold_left min max_int ties
  | Some rng, ties -> Rng.pick rng ties

let mcs ?(initial = []) ?rng g =
  let n = Graph.order g in
  let numbered = Array.make n false in
  let weight = Array.make n 0 in
  let ord = Array.make n 0 in
  (* Unnumbered vertices live in buckets indexed by current weight:
     selection pops from the highest nonempty bucket and numbering a
     vertex moves each unnumbered neighbor up one bucket, so the whole
     scan does O(n + m) bucket operations instead of refiltering the
     full vertex list on every round. A weight never exceeds the vertex
     degree, so n + 1 buckets always suffice. *)
  let buckets = Array.make (n + 1) Iset.empty in
  if n > 0 then buckets.(0) <- Iset.of_list (Graph.vertices g);
  let maxw = ref 0 in
  let place idx v =
    ord.(idx) <- v;
    numbered.(v) <- true;
    buckets.(weight.(v)) <- Iset.remove v buckets.(weight.(v));
    Iset.iter
      (fun w ->
        let old = weight.(w) in
        weight.(w) <- old + 1;
        if not numbered.(w) then begin
          buckets.(old) <- Iset.remove w buckets.(old);
          buckets.(old + 1) <- Iset.add w buckets.(old + 1);
          if old + 1 > !maxw then maxw := old + 1
        end)
      (Graph.neighbors g v)
  in
  List.iteri
    (fun idx v ->
      if numbered.(v) then invalid_arg "Order.mcs: duplicate initial vertex";
      place idx v)
    initial;
  let next_index = ref (List.length initial) in
  while !next_index < n do
    while !maxw > 0 && Iset.is_empty buckets.(!maxw) do
      decr maxw
    done;
    let bucket = buckets.(!maxw) in
    let v =
      match rng with
      | None -> Iset.min_elt bucket
      | Some rng ->
        (* The tie list must match the one {!argmax}'s fold used to build
           over the ascending candidate scan — descending vertex ids — so
           a seeded rng draws the very same vertex. *)
        Rng.pick rng (List.rev (Iset.elements bucket))
    in
    place !next_index v;
    incr next_index
  done;
  ord

(* Shared scaffolding for the greedy elimination heuristics: repeatedly
   eliminate the best-scoring vertex from a working fill graph, assigning
   numbers n, n-1, ..., 1. [score] sees the current fill graph and the set
   of remaining vertices; higher is better. *)
let greedy_elimination ?rng ~score g =
  let n = Graph.order g in
  let work = Graph.copy g in
  let remaining = ref (Iset.of_list (Graph.vertices g)) in
  let ord = Array.make n 0 in
  for idx = n - 1 downto 0 do
    let candidates = Iset.elements !remaining in
    let v = argmax ?rng ~score:(score work !remaining) candidates in
    ord.(idx) <- v;
    let nbrs = Iset.inter (Graph.neighbors work v) (Iset.remove v !remaining) in
    Graph.complete_among work (Iset.elements nbrs);
    remaining := Iset.remove v !remaining
  done;
  ord

let live_neighbors work remaining v =
  Iset.inter (Graph.neighbors work v) (Iset.remove v remaining)

let min_degree ?rng g =
  let score work remaining v =
    -Iset.cardinal (live_neighbors work remaining v)
  in
  greedy_elimination ?rng ~score g

let fill_edges_needed work remaining v =
  let nbrs = Iset.elements (live_neighbors work remaining v) in
  let rec count = function
    | [] -> 0
    | u :: rest ->
      List.fold_left
        (fun acc w -> if Graph.has_edge work u w then acc else acc + 1)
        0 rest
      + count rest
  in
  count nbrs

let min_fill ?rng g =
  let score work remaining v = -fill_edges_needed work remaining v in
  greedy_elimination ?rng ~score g

let identity g = Array.of_list (Graph.vertices g)

let random ~rng g =
  let ord = identity g in
  Rng.shuffle rng ord;
  ord

let eliminate_along g ord ~on_eliminate =
  let work = Graph.copy g in
  let remaining = ref (Iset.of_list (Graph.vertices g)) in
  for idx = Array.length ord - 1 downto 0 do
    let v = ord.(idx) in
    let nbrs = live_neighbors work !remaining v in
    on_eliminate v nbrs;
    Graph.complete_among work (Iset.elements nbrs);
    remaining := Iset.remove v !remaining
  done;
  work

let induced_width g ord =
  let width = ref 0 in
  let record _v nbrs = width := max !width (Iset.cardinal nbrs) in
  ignore (eliminate_along g ord ~on_eliminate:record);
  !width

let fill_graph g ord = eliminate_along g ord ~on_eliminate:(fun _ _ -> ())

let all_orders g =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (perms rest))
        l
  in
  List.map Array.of_list (perms (Graph.vertices g))
