(** Vertex elimination orders and their induced width.

    Bucket elimination processes variables along an order; the largest
    scope it ever creates is the order's {e induced width}. The paper's
    Theorem 2 states that the minimum induced width over all orders is
    the treewidth, and its implementation uses the maximum-cardinality
    search (MCS) order of Tarjan and Yannakakis as a heuristic. *)

type t = int array
(** A permutation of the vertices; [t.(i)] is the vertex numbered [i+1]
    in the paper's 1-based convention. Bucket elimination eliminates the
    {e highest}-numbered vertex first. *)

val is_permutation : Graph.t -> t -> bool

val mcs : ?initial:int list -> ?rng:Rng.t -> Graph.t -> t
(** Maximum-cardinality search: number vertices [1..n], each time picking
    an unnumbered vertex adjacent to the most numbered ones. [initial]
    vertices (the target schema, in the paper) are numbered first, in the
    given order. Ties break via [rng] when given, else by smallest id. *)

val min_degree : ?rng:Rng.t -> Graph.t -> t
(** Greedy minimum-degree elimination order: the vertex eliminated first
    (numbered last) always has minimum degree in the current fill graph. *)

val min_fill : ?rng:Rng.t -> Graph.t -> t
(** Greedy minimum-fill elimination order: eliminate the vertex whose
    elimination adds the fewest fill edges. *)

val identity : Graph.t -> t
val random : rng:Rng.t -> Graph.t -> t

val induced_width : Graph.t -> t -> int
(** Width of the elimination process along the order: vertices are
    eliminated from the highest number down, each elimination turning the
    remaining neighbors into a clique; the result is the largest number
    of remaining neighbors seen. *)

val fill_graph : Graph.t -> t -> Graph.t
(** The triangulation induced by eliminating along the order (original
    edges plus all fill edges). The result is chordal. *)

val all_orders : Graph.t -> t list
(** Every permutation; for exhaustive checks on small graphs only. *)
