(** Graphviz (DOT) rendering of graphs and tree decompositions, for
    inspecting generated instances and decompositions by eye. *)

val graph : ?name:string -> ?label:(int -> string) -> Graph.t -> string
(** DOT source for an undirected graph. *)

val tree_decomposition : ?name:string -> ?label:(int -> string) -> Treedec.t -> string
(** DOT source showing each bag's contents. *)
