module Iset = Graph.Iset

let candidate_orders ?rng g =
  [ Order.mcs ?rng g; Order.min_degree ?rng g; Order.min_fill ?rng g ]

let best_order ?rng g =
  let orders = candidate_orders ?rng g in
  let widths = List.map (fun ord -> (Order.induced_width g ord, ord)) orders in
  snd (List.fold_left min (List.hd widths) (List.tl widths))

let upper_bound ?rng g = Order.induced_width g (best_order ?rng g)

(* Degeneracy: peel minimum-degree vertices (no fill), track the largest
   minimum degree encountered. *)
let lower_bound g =
  let work = Graph.copy g in
  let remaining = ref (Iset.of_list (Graph.vertices g)) in
  let bound = ref 0 in
  while not (Iset.is_empty !remaining) do
    let live_degree v =
      Iset.cardinal (Iset.inter (Graph.neighbors work v) (Iset.remove v !remaining))
    in
    let v =
      Iset.fold
        (fun v best -> if live_degree v < live_degree best then v else best)
        !remaining
        (Iset.min_elt !remaining)
    in
    bound := max !bound (live_degree v);
    remaining := Iset.remove v !remaining
  done;
  !bound

(* Exact treewidth as a memoized recursion over the set of not-yet-
   eliminated vertices. The fill graph after eliminating a set depends
   only on the set, so a vertex's degree within [mask] can be recovered
   without tracking fill edges: w is a fill-neighbor of v iff some path
   joins them through eliminated vertices only. *)
let exact ?(max_order = 24) g =
  let n = Graph.order g in
  if n > max_order then None
  else if n <= 1 then Some 0
  else begin
    let adj = Array.init n (fun v -> Graph.neighbors g v) in
    let degree_in_mask mask v =
      (* BFS from v: neighbors inside the mask count; neighbors outside
         (eliminated) are traversed. *)
      let seen = Array.make n false in
      seen.(v) <- true;
      let count = ref 0 in
      let queue = Queue.create () in
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Iset.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              if mask land (1 lsl w) <> 0 then incr count
              else Queue.add w queue
            end)
          adj.(u)
      done;
      !count
    in
    let memo = Hashtbl.create 4096 in
    let rec tw mask =
      match Hashtbl.find_opt memo mask with
      | Some w -> w
      | None ->
        let members =
          List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id)
        in
        let w =
          match members with
          | [] | [ _ ] -> 0
          | _ ->
            List.fold_left
              (fun best v ->
                let d = degree_in_mask mask v in
                if d >= best then best
                else max d (min best (tw (mask lxor (1 lsl v)))))
              max_int members
        in
        Hashtbl.add memo mask w;
        w
    in
    Some (tw ((1 lsl n) - 1))
  end
