type params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
}

let default_params =
  { iterations = 2000; initial_temperature = 1.0; cooling = 0.995 }

let improve ?(params = default_params) ~rng g order =
  let n = Array.length order in
  let current = Array.copy order in
  let current_width = ref (Order.induced_width g current) in
  let best = Array.copy current in
  let best_width = ref !current_width in
  let temperature = ref params.initial_temperature in
  if n >= 2 then
    for _ = 1 to params.iterations do
      let i = Rng.int rng n and j = Rng.int rng n in
      if i <> j then begin
        let swap () =
          let tmp = current.(i) in
          current.(i) <- current.(j);
          current.(j) <- tmp
        in
        swap ();
        let width = Order.induced_width g current in
        let delta = float_of_int (width - !current_width) in
        let accept =
          delta <= 0.0
          || (!temperature > 1e-9
             && Rng.float rng 1.0 < Float.exp (-.delta /. !temperature))
        in
        if accept then begin
          current_width := width;
          if width < !best_width then begin
            best_width := width;
            Array.blit current 0 best 0 n
          end
        end
        else swap ()
      end;
      temperature := !temperature *. params.cooling
    done;
  (best, !best_width)

let anneal ?params ~rng g =
  let start = Treewidth.best_order g in
  improve ?params ~rng g start
