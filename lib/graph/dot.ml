let default_label v = Printf.sprintf "v%d" v

let graph ?(name = "g") ?(label = default_label) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v)))
    (Graph.vertices g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tree_decomposition ?(name = "td") ?(label = default_label) td =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=box];\n" name);
  Array.iteri
    (fun i bag ->
      let contents =
        String.concat ", " (List.map label (Graph.Iset.elements bag))
      in
      Buffer.add_string buf (Printf.sprintf "  b%d [label=\"{%s}\"];\n" i contents))
    td.Treedec.bags;
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  b%d -- b%d;\n" i j))
    (Graph.edges td.Treedec.tree);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
