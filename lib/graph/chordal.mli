(** Chordality testing (Tarjan–Yannakakis).

    A graph is chordal iff eliminating along the reverse of an MCS order
    introduces no fill edge; chordal graphs are exactly those whose
    treewidth is witnessed without triangulating further. The paper cites
    this algorithm [31] both for the MCS order and for acyclicity testing. *)

val is_chordal : Graph.t -> bool

val perfect_elimination_order : Graph.t -> Order.t option
(** An elimination order with zero fill if the graph is chordal. *)

val max_cliques : Graph.t -> int list list
(** The maximal cliques of a {e chordal} graph, one per vertex-with-
    followers along a perfect elimination order, deduplicated.
    @raise Invalid_argument if the graph is not chordal. *)
