(** Gradient-guided join-order search — the drop-in alternative to the
    genetic planner for large naive queries.

    The discrete permutation space is relaxed through priority scores:
    a real vector over the atoms decodes to the order that sorts scores
    descending, Gumbel perturbations of the scores induce a smoothed
    (Plackett–Luce) distribution over permutations, and a score-function
    gradient of the expected log-cost moves the scores downhill. Greedy
    and random restarts plus a swap/insertion polish make the search
    robust on small instances, where it should never lose to the
    genetic pool. The plan space is exactly the genetic planner's —
    left-deep scan orders — so swapping planners can only change the
    order, never the answer. *)

type params = {
  seed : int;  (** base seed; the search derives its own streams *)
  restarts : int;  (** random restarts beyond the greedy + identity inits *)
  steps : int;  (** gradient steps per restart *)
  batch : int;  (** Gumbel perturbations per gradient estimate *)
  learning_rate : float;
  sigma : float;  (** Gumbel noise scale (temperature of the relaxation) *)
}

val default_params : params

val order :
  ?params:params -> Ppr_core.Cost.env -> Conjunctive.Cq.atom array ->
  int array
(** A permutation of [0 .. m-1] (always valid, by construction: scores
    decode through argsort) approximately minimizing
    {!Ppr_core.Cost.order_cost}. Deterministic for fixed params, inputs
    and environment. *)

val register : unit -> unit
(** Register {!order} (with {!default_params}) as the ["gradient"]
    order-search plugin, so [Naive.Plugin ("gradient", threshold)]
    resolves — call once at startup (CLI main, engine create). *)
