module Cost = Ppr_core.Cost

(* Factors live in log space so exponential decay is a convex blend and
   over/under-estimates of equal magnitude cancel symmetrically. *)
type entry = { mutable logf : float; mutable samples : int }

type t = {
  decay : float;
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  hits : int Atomic.t;
  total_samples : int Atomic.t;
}

let create ?(decay = 0.3) () =
  if not (decay > 0. && decay <= 1.) then
    invalid_arg "Adapt.Store.create: decay outside (0, 1]";
  {
    decay;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    hits = Atomic.make 0;
    total_samples = Atomic.make 0;
  }

let decay t = t.decay

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let observe t ~key ~measured ~estimated =
  if
    Float.is_finite measured && Float.is_finite estimated && measured >= 0.
    && estimated > 0.
  then begin
    let ratio = Cost.clamp_factor (measured /. estimated) in
    let lr = log ratio in
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
          e.logf <- ((1. -. t.decay) *. e.logf) +. (t.decay *. lr);
          e.samples <- e.samples + 1
        | None ->
          (* The first sample is taken whole: decaying toward the prior
             log f = 0 would water down the one thing we just learned. *)
          Hashtbl.add t.table key { logf = lr; samples = 1 });
    Atomic.incr t.total_samples
  end

let ingest t obs =
  List.iter
    (fun o ->
      observe t ~key:o.Cost.key ~measured:o.Cost.measured
        ~estimated:o.Cost.estimated)
    obs

let factor t key =
  locked t (fun () ->
      Option.map (fun e -> exp e.logf) (Hashtbl.find_opt t.table key))

let feedback t key =
  match factor t key with
  | Some f ->
    Atomic.incr t.hits;
    Some f
  | None -> None

let size t = locked t (fun () -> Hashtbl.length t.table)
let hits t = Atomic.get t.hits
let samples t = Atomic.get t.total_samples

(* ------------------------------------------------------------------ *)
(* Persistence — the plan cache's discipline: self-describing header,
   silent rejection of anything the running binary did not write,
   atomic replace. Entries are plain (key, logf, samples) triples. *)

let magic = "ppr-feedback\n"
let format_version = 1

let self_digest () =
  try Digest.file Sys.executable_name with Sys_error _ -> Digest.string "ppr"

let save t path =
  let entries =
    locked t (fun () ->
        Hashtbl.fold
          (fun key e acc -> (key, e.logf, e.samples) :: acc)
          t.table [])
    |> List.sort compare
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc (format_version, self_digest ()) [];
      Marshal.to_channel oc (List.length entries) [];
      List.iter (fun entry -> Marshal.to_channel oc entry []) entries);
  Sys.rename tmp path;
  List.length entries

let load t path =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic -> (
    let read () =
      let m = really_input_string ic (String.length magic) in
      if m <> magic then None
      else
        let version, digest = (Marshal.from_channel ic : int * Digest.t) in
        if
          version <> format_version
          || not (Digest.equal digest (self_digest ()))
        then None
        else begin
          (* Decode everything before touching the store: a snapshot
             that dies mid-file must not leave a half-merged prefix. *)
          let n = (Marshal.from_channel ic : int) in
          let entries = ref [] in
          for _ = 1 to n do
            let key, logf, samples =
              (Marshal.from_channel ic : string * float * int)
            in
            if Float.is_finite logf && samples > 0 then
              entries := (key, logf, samples) :: !entries
          done;
          locked t (fun () ->
              List.iter
                (fun (key, logf, samples) ->
                  if not (Hashtbl.mem t.table key) then
                    Hashtbl.add t.table key { logf; samples })
                !entries);
          Some (List.length !entries)
        end
    in
    match Fun.protect ~finally:(fun () -> close_in_noerr ic) read with
    | Some n -> n
    | None -> 0
    | exception _ -> 0)
