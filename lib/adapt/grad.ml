module Cost = Ppr_core.Cost
module Naive = Ppr_core.Naive
module Cq = Conjunctive.Cq
module Rng = Graphlib.Rng

type params = {
  seed : int;
  restarts : int;
  steps : int;
  batch : int;
  learning_rate : float;
  sigma : float;
}

let default_params =
  {
    seed = 42;
    restarts = 4;
    steps = 40;
    batch = 8;
    learning_rate = 0.25;
    sigma = 1.0;
  }

(* Scores decode to a permutation by sorting descending (stable on ties
   via the index), so any real vector is a valid order — the relaxation
   can never propose an ill-formed plan. *)
let decode scores =
  let m = Array.length scores in
  let idx = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      match compare scores.(b) scores.(a) with 0 -> compare a b | c -> c)
    idx;
  idx

(* Scores that decode to exactly [perm]. *)
let encode perm =
  let m = Array.length perm in
  let scores = Array.make m 0. in
  Array.iteri (fun pos i -> scores.(i) <- float_of_int (m - pos)) perm;
  scores

(* Greedy left-deep construction under the independence model: always
   scan next the atom whose join with the current prefix is estimated
   cheapest — the incremental term [order_cost] itself charges. *)
let greedy_order env atoms =
  let m = Array.length atoms in
  let used = Array.make m false in
  let bound = Hashtbl.create 16 in
  let order = Array.make m 0 in
  let card = ref 1.0 in
  for pos = 0 to m - 1 do
    let best = ref (-1) and best_cost = ref infinity in
    for i = 0 to m - 1 do
      if not used.(i) then begin
        let joined =
          List.fold_left
            (fun acc v ->
              if Hashtbl.mem bound v then acc /. Cost.domain_size env v
              else acc)
            (!card *. Cost.atom_cardinality env atoms.(i))
            (Cq.atom_vars atoms.(i))
        in
        if joined < !best_cost then begin
          best := i;
          best_cost := joined
        end
      end
    done;
    used.(!best) <- true;
    order.(pos) <- !best;
    card := !best_cost;
    List.iter
      (fun v -> Hashtbl.replace bound v ())
      (Cq.atom_vars atoms.(!best))
  done;
  order

(* Remove the element at [i] and reinsert it at position [j]. *)
let insert_move src i j =
  let m = Array.length src in
  let v = src.(i) in
  let rest = Array.make (m - 1) v in
  let p = ref 0 in
  for k = 0 to m - 1 do
    if k <> i then begin
      rest.(!p) <- src.(k);
      incr p
    end
  done;
  let cand = Array.make m v in
  for k = 0 to j - 1 do
    cand.(k) <- rest.(k)
  done;
  cand.(j) <- v;
  for k = j to m - 2 do
    cand.(k + 1) <- rest.(k)
  done;
  cand

(* Full-neighborhood local search over general swaps and single-element
   insertions, to a local optimum (bounded passes as a safety net —
   each pass is O(m^2) evaluations). *)
let local_search fitness perm cost0 =
  let m = Array.length perm in
  let best = Array.copy perm in
  let best_cost = ref cost0 in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 4 * m do
    improved := false;
    incr passes;
    for i = 0 to m - 2 do
      for j = i + 1 to m - 1 do
        let tmp = best.(i) in
        best.(i) <- best.(j);
        best.(j) <- tmp;
        let c = fitness best in
        if c < !best_cost then begin
          best_cost := c;
          improved := true
        end
        else begin
          best.(j) <- best.(i);
          best.(i) <- tmp
        end
      done
    done;
    (* Insertions: move element i to position j, shifting the rest. *)
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if i <> j then begin
          let cand = insert_move best i j in
          let c = fitness cand in
          if c < !best_cost then begin
            Array.blit cand 0 best 0 m;
            best_cost := c;
            improved := true
          end
        end
      done
    done
  done;
  (best, !best_cost)

let gumbel rng sigma =
  (* Inverse-CDF sampling; clamp the uniform away from {0, 1}. *)
  let u = Float.max 1e-12 (Float.min (1. -. 1e-12) (Rng.float rng 1.0)) in
  -.sigma *. log (-.log u)

let order ?(params = default_params) env atoms =
  let m = Array.length atoms in
  if m <= 1 then Array.init m Fun.id
  else begin
    let fitness perm = Cost.order_cost env atoms perm in
    let rng = Rng.make params.seed in
    let best = ref (Array.init m Fun.id) in
    let best_cost = ref (fitness !best) in
    let consider perm =
      let c = fitness perm in
      if c < !best_cost then begin
        best := Array.copy perm;
        best_cost := c
      end;
      c
    in
    let inits =
      greedy_order env atoms :: Array.init m Fun.id
      :: List.init (max 0 params.restarts) (fun _ ->
             let p = Array.init m Fun.id in
             Rng.shuffle rng p;
             p)
    in
    List.iter
      (fun init ->
        ignore (consider init);
        let scores = encode init in
        (* Score-function (evolution-strategies) gradient on the Gumbel
           relaxation: perturb, decode, measure log-cost, and push the
           scores along the baseline-centered perturbations. log1p keeps
           the huge cost range from blowing up the step size. *)
        for _ = 1 to params.steps do
          let zs =
            Array.init params.batch (fun _ ->
                Array.init m (fun _ -> gumbel rng params.sigma))
          in
          let fs =
            Array.map
              (fun z ->
                let perturbed =
                  Array.init m (fun i -> scores.(i) +. z.(i))
                in
                log1p (consider (decode perturbed)))
              zs
          in
          let baseline =
            Array.fold_left ( +. ) 0. fs /. float_of_int params.batch
          in
          for i = 0 to m - 1 do
            let g = ref 0. in
            for b = 0 to params.batch - 1 do
              g := !g +. ((fs.(b) -. baseline) *. zs.(b).(i))
            done;
            let g =
              !g /. (float_of_int params.batch *. params.sigma)
            in
            scores.(i) <- scores.(i) -. (params.learning_rate *. g)
          done
        done;
        ignore (consider (decode scores));
        (* Polish per restart: the relaxation gets close, the discrete
           neighborhood finishes the job — and polishing every start,
           not just the global champion, keeps one deep local optimum
           from shadowing a better basin found by another init. *)
        let final = decode scores in
        let cand, cand_cost =
          let ci = fitness init and cf = fitness final in
          if ci <= cf then (init, ci) else (final, cf)
        in
        let polished, _ = local_search fitness (Array.copy cand) cand_cost in
        ignore (consider polished))
      inits;
    (* Iterated local search around the champion: random swap kicks
       escape the basin the polish converged into, and every kicked
       point is re-polished. The champion only ever improves. *)
    for _ = 1 to Int.max 20 (2 * m) do
      let cand = Array.copy !best in
      for _ = 1 to 3 do
        let i = Rng.int rng m and j = Rng.int rng m in
        let tmp = cand.(i) in
        cand.(i) <- cand.(j);
        cand.(j) <- tmp
      done;
      let polished, _ = local_search fitness cand (fitness cand) in
      ignore (consider polished)
    done;
    !best
  end

let register () =
  Naive.register_order_search "gradient" (fun env atoms ->
      order ~params:default_params env atoms)
