(** The feedback store: learned cardinality-correction factors keyed by
    the structural signatures of {!Ppr_core.Cost}.

    Each entry blends the measured/estimated ratios observed for one
    signature into a single correction factor with exponential decay —
    recent executions dominate, old mistakes fade — and the whole store
    round-trips to disk with the same self-describing header discipline
    as the serving layer's plan cache: magic, format version, digest of
    the running executable, atomic tmp+rename. Thread-safe: worker
    domains of one daemon share one store. *)

type t

val create : ?decay:float -> unit -> t
(** An empty store. [decay] is the blending weight of the {e newest}
    observation, in (0, 1]: factors update as
    [log f <- (1 - decay) * log f + decay * log ratio] (the first
    observation for a key is taken whole). Defaults to [0.3].
    @raise Invalid_argument if [decay] is outside (0, 1]. *)

val decay : t -> float

val observe : t -> key:string -> measured:float -> estimated:float -> unit
(** Blend one ground-truth sample into the key's factor. The ratio
    [measured /. estimated] is clamped per {!Ppr_core.Cost.clamp_factor}
    before blending; samples with non-positive or non-finite [estimated]
    or negative [measured] are dropped. *)

val ingest : t -> Ppr_core.Cost.observation list -> unit
(** {!observe} every harvested observation — the driver's observer hook
    funnels here. *)

val factor : t -> string -> float option
(** The current correction factor for a signature, or [None] if the
    store never saw it. Does not count as a feedback hit. *)

val feedback : t -> Ppr_core.Cost.feedback
(** The store as a correction function for {!Ppr_core.Cost.environment}.
    Every [Some] answer counts on {!hits} — the observable that lets
    tests (and the daemon's stats) prove corrected estimates are
    actually being served. *)

val size : t -> int
(** Distinct signatures with a learned factor. *)

val hits : t -> int
(** Total [Some] answers served through {!feedback} closures. *)

val samples : t -> int
(** Total observations blended in (across all keys, including decayed
    ones). *)

val save : t -> string -> int
(** Write a snapshot (atomically: tmp file, then rename), returning the
    number of entries written. The header carries a magic string, the
    format version and the digest of the running executable, so only the
    binary that wrote a snapshot trusts it. *)

val load : t -> string -> int
(** Merge a snapshot's entries into the store (snapshot factors seed
    keys the store has not seen; keys already present keep their live
    value), returning the number of entries read. A missing file, a
    foreign or stale snapshot, or any decode error loads nothing and
    returns [0] — a bad snapshot must never poison a fresh daemon. *)
