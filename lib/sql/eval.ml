module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Tuple = Relalg.Tuple
module Ops = Relalg.Ops
module Database = Conjunctive.Database

(* Qualified column names are interned per evaluation; attribute ids are
   therefore globally consistent within one query. *)
type env = { db : Database.t; symbols : Relalg.Symbol.table }

let attr env (c : Ast.column) =
  Relalg.Symbol.intern env.symbols (c.Ast.qualifier ^ "." ^ c.Ast.name)

let rebuild_with_schema rel schema =
  if Schema.arity schema <> Relation.arity rel then
    failwith "Eval: column-count mismatch";
  let out = Relation.create ~size_hint:(Relation.cardinality rel) schema in
  Relation.iter (fun tup -> ignore (Relation.add out tup)) rel;
  out

let scan env (r : Ast.table_ref) =
  let base =
    try Database.find env.db r.Ast.relation
    with Not_found -> failwith ("Eval: unknown relation " ^ r.Ast.relation)
  in
  let schema =
    Schema.of_list
      (List.map (fun name -> attr env (Ast.col r.Ast.alias name)) r.Ast.columns)
  in
  rebuild_with_schema base schema

(* Split equalities into cross-relation join pairs and same-side filters,
   relative to two operand schemas. *)
let classify_equalities env sl sr eqs =
  List.fold_left
    (fun (pairs, post) (e : Ast.equality) ->
      let a = attr env e.Ast.left and b = attr env e.Ast.right in
      match (Schema.mem sl a, Schema.mem sr b, Schema.mem sl b, Schema.mem sr a) with
      | true, true, _, _ -> ((a, b) :: pairs, post)
      | _, _, true, true -> ((b, a) :: pairs, post)
      | _ -> (pairs, e :: post))
    ([], []) eqs

let apply_filter ?ctx env rel (e : Ast.equality) =
  let a = attr env e.Ast.left and b = attr env e.Ast.right in
  let schema = Relation.schema rel in
  if Schema.mem schema a && Schema.mem schema b then
    Ops.select_attr_eq ?ctx rel a b
  else failwith ("Eval: condition references an out-of-scope column")

let rec eval_tree ?ctx env = function
  | Ast.Relation r -> scan env r
  | Ast.Join { left; right; on } ->
    let rl = eval_tree ?ctx env left in
    let rr = eval_tree ?ctx env right in
    let pairs, post =
      classify_equalities env (Relation.schema rl) (Relation.schema rr) on
    in
    let joined = Ops.equijoin ?ctx ~on:pairs rl rr in
    List.fold_left (apply_filter ?ctx env) joined post
  | Ast.Subquery { body; alias } ->
    let names, rel = eval_query ?ctx env body in
    let schema =
      Schema.of_list (List.map (fun n -> attr env (Ast.col alias n)) names)
    in
    rebuild_with_schema rel schema

and eval_query ?ctx env (q : Ast.query) =
  let stats = Option.bind ctx Relalg.Ctx.stats in
  let limits = Option.bind ctx Relalg.Ctx.limits in
  (* Fold FROM items left-deep; attach each WHERE equality at the first
     point both of its columns are in scope. *)
  let joined =
    match q.Ast.from with
    | [] -> failwith "Eval: empty FROM"
    | first :: rest ->
      let initial = eval_tree ?ctx env first in
      let acc, pending =
        List.fold_left
          (fun (acc, pending) item ->
            let next = eval_tree ?ctx env item in
            let pairs, rest =
              classify_equalities env (Relation.schema acc)
                (Relation.schema next) pending
            in
            (Ops.equijoin ?ctx ~on:pairs acc next, rest))
          (initial, q.Ast.where) rest
      in
      List.fold_left (apply_filter ?ctx env) acc pending
  in
  let names = List.map (fun (c : Ast.column) -> c.Ast.name) q.Ast.select in
  let positions =
    Array.of_list
      (List.map
         (fun c ->
           let a = attr env c in
           try Schema.index (Relation.schema joined) a
           with Not_found ->
             failwith ("Eval: unknown column " ^ Pretty.column c))
         q.Ast.select)
  in
  let out_schema = Schema.of_list (List.init (List.length names) Fun.id) in
  let out = Relation.create ~size_hint:(Relation.cardinality joined) out_schema in
  Relation.iter (fun tup -> ignore (Relation.add out (Tuple.project tup positions))) joined;
  (match stats with
  | Some st ->
    Relalg.Stats.record_projection st;
    Relalg.Stats.record_relation st ~arity:(Relation.arity out)
      ~cardinality:(Relation.cardinality out)
  | None -> ());
  (match limits with
  | Some l -> Relalg.Limits.check_cardinality l (Relation.cardinality out)
  | None -> ());
  (names, out)

let query ?ctx db q =
  let env = { db; symbols = Relalg.Symbol.create () } in
  eval_query ?ctx env q

let nonempty ?ctx db q =
  let _, rel = query ?ctx db q in
  not (Relation.is_empty rel)
