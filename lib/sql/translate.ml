module Cq = Conjunctive.Cq

let default_namer = Conjunctive.Encode.variable_namer

let atom_alias i = "e" ^ string_of_int (i + 1)

let table_ref namer i (atom : Cq.atom) =
  {
    Ast.relation = atom.Cq.rel;
    alias = atom_alias i;
    columns = List.map namer atom.Cq.vars;
  }

(* First atom index containing each variable, and the free-variable
   SELECT list (or the paper's one-variable emulation). *)
let first_occurrence cq = Cq.min_occur cq

let representative_select namer cq =
  let p = first_occurrence cq in
  match cq.Cq.free with
  | [] -> (
    match cq.Cq.atoms with
    | { Cq.vars = v :: _; _ } :: _ -> [ Ast.col (atom_alias 0) (namer v) ]
    | _ -> invalid_arg "Translate: query without atoms")
  | free ->
    List.map (fun v -> Ast.col (atom_alias (Hashtbl.find p v)) (namer v)) free

let naive ?(namer = default_namer) cq =
  if cq.Cq.atoms = [] then invalid_arg "Translate.naive: no atoms";
  let p = first_occurrence cq in
  let where =
    List.concat
      (List.mapi
         (fun j atom ->
           List.filter_map
             (fun v ->
               let first = Hashtbl.find p v in
               if first < j then
                 Some
                   (Ast.eq
                      (Ast.col (atom_alias first) (namer v))
                      (Ast.col (atom_alias j) (namer v)))
               else None)
             (Cq.atom_vars atom))
         cq.Cq.atoms)
  in
  {
    Ast.select = representative_select namer cq;
    from = List.mapi (fun i atom -> Ast.Relation (table_ref namer i atom)) cq.Cq.atoms;
    where;
  }

let join_conditions namer p j atom =
  List.filter_map
    (fun v ->
      let first = Hashtbl.find p v in
      if first < j then
        Some
          (Ast.eq
             (Ast.col (atom_alias first) (namer v))
             (Ast.col (atom_alias j) (namer v)))
      else None)
    (Cq.atom_vars atom)

let straightforward ?(namer = default_namer) cq =
  let atoms = Array.of_list cq.Cq.atoms in
  if Array.length atoms = 0 then invalid_arg "Translate.straightforward: no atoms";
  let p = first_occurrence cq in
  let rec chain j =
    (* Join tree over atoms 0..j, with atom j outermost-left. *)
    if j = 0 then Ast.Relation (table_ref namer 0 atoms.(0))
    else
      Ast.Join
        {
          left = Ast.Relation (table_ref namer j atoms.(j));
          right = chain (j - 1);
          on = join_conditions namer p j atoms.(j);
        }
  in
  {
    Ast.select = representative_select namer cq;
    from = [ chain (Array.length atoms - 1) ];
    where = [];
  }

(* ------------------------------------------------------------------ *)
(* Early projection (Appendix A.3). Subquery boundaries sit at each
   variable's last occurrence; a level spanning atoms (j+1 .. hi) SELECTs
   the variables live at hi, sourcing each from its last occurrence
   within the level, or from the inner subquery's alias. *)

let early_projection ?(namer = default_namer) cq =
  let atoms = Array.of_list cq.Cq.atoms in
  let m = Array.length atoms in
  if m = 0 then invalid_arg "Translate.early_projection: no atoms";
  let occurrences = Cq.occurrences cq in
  let free = cq.Cq.free in
  let min_occ v = List.hd (Hashtbl.find occurrences v) in
  let max_occ v =
    (* Free variables stay live beyond the last atom, as in the paper's
       implementation (max_occur[j] = |E| + 1). *)
    if List.mem v free then m
    else List.fold_left max (-1) (Hashtbl.find occurrences v)
  in
  let last_occurrence_at_most v hi =
    List.fold_left
      (fun acc i -> if i <= hi then max acc i else acc)
      (-1)
      (Hashtbl.find occurrences v)
  in
  let boundary i =
    (* A subquery boundary below atom i+1: some variable dies at atom i. *)
    i < m - 1 && List.exists (fun v -> max_occ v = i) (Cq.atom_vars atoms.(i))
  in
  let all_vars = Cq.vars cq in
  let live hi =
    List.filter (fun v -> min_occ v <= hi && hi <= max_occ v) all_vars
  in
  let fresh_subquery = ref 0 in
  let rec build hi =
    (* The query over atoms 0..hi. *)
    let rec find_boundary j = if j < 0 then None else if boundary j then Some j else find_boundary (j - 1) in
    let cut = find_boundary (hi - 1) in
    let inner, bottom =
      match cut with
      | Some j ->
        incr fresh_subquery;
        let alias = "t" ^ string_of_int !fresh_subquery in
        (Some (alias, Ast.Subquery { body = build j; alias }), j + 1)
      | None -> (None, 0)
    in
    (* Source of a variable for references made by atom k (or by the
       SELECT when k = hi+1): its last occurrence strictly below k if
       within the level, else the subquery alias. *)
    let source_below k v =
      let last =
        List.fold_left
          (fun acc i -> if i < k then max acc i else acc)
          (-1)
          (Hashtbl.find occurrences v)
      in
      if last >= bottom then Ast.col (atom_alias last) (namer v)
      else
        match inner with
        | Some (alias, _) -> Ast.col alias (namer v)
        | None ->
          invalid_arg "Translate.early_projection: variable has no source"
    in
    let conds k =
      List.filter_map
        (fun v ->
          if min_occ v < k then
            Some (Ast.eq (source_below k v) (Ast.col (atom_alias k) (namer v)))
          else None)
        (Cq.atom_vars atoms.(k))
    in
    let base =
      match inner with
      | Some (_, sub) ->
        Ast.Join
          {
            left = Ast.Relation (table_ref namer bottom atoms.(bottom));
            right = sub;
            on = conds bottom;
          }
      | None -> Ast.Relation (table_ref namer bottom atoms.(bottom))
    in
    let rec pile k acc =
      if k > hi then acc
      else
        pile (k + 1)
          (Ast.Join
             {
               left = Ast.Relation (table_ref namer k atoms.(k));
               right = acc;
               on = conds k;
             })
    in
    let tree = pile (bottom + 1) base in
    let select =
      if hi = m - 1 then
        (* Outermost query: the target schema (or the one-variable
           emulation, sourced from the top atom). *)
        match free with
        | [] -> (
          match atoms.(hi).Cq.vars with
          | v :: _ -> [ Ast.col (atom_alias (last_occurrence_at_most v hi)) (namer v) ]
          | [] -> invalid_arg "Translate: atom without variables")
        | free -> List.map (fun v -> source_below (hi + 1) v) free
      else
        List.map
          (fun v ->
            let last = last_occurrence_at_most v hi in
            if last >= bottom then Ast.col (atom_alias last) (namer v)
            else
              match inner with
              | Some (alias, _) -> Ast.col alias (namer v)
              | None -> invalid_arg "Translate.early_projection: dead select")
          (live hi)
    in
    { Ast.select; from = [ tree ]; where = [] }
  in
  build (m - 1)

let reordering ?(namer = default_namer) ?rng cq =
  let rho = Ppr_core.Reorder.permutation ?rng cq in
  early_projection ~namer (Cq.permute_atoms cq rho)

(* ------------------------------------------------------------------ *)
(* Generic plan-to-SQL emission.                                       *)

module Vmap = Map.Make (Int)

let of_plan ?(namer = default_namer) cq plan =
  let atom_counter = ref 0 in
  let subquery_counter = ref 0 in
  let rec emit = function
    | Ppr_core.Plan.Atom atom ->
      let vars = Cq.atom_vars atom in
      if List.length vars <> List.length atom.Cq.vars then
        invalid_arg "Translate.of_plan: atom with a repeated variable";
      let i = !atom_counter in
      incr atom_counter;
      let alias = atom_alias i in
      let sources =
        List.fold_left
          (fun acc v -> Vmap.add v (Ast.col alias (namer v)) acc)
          Vmap.empty vars
      in
      ( Ast.Relation
          { Ast.relation = atom.Cq.rel; alias; columns = List.map namer atom.Cq.vars },
        sources )
    | Ppr_core.Plan.Join (l, r) ->
      let tl, sl = emit l in
      let tr, sr = emit r in
      let on =
        Vmap.fold
          (fun v cl acc ->
            match Vmap.find_opt v sr with
            | Some cr -> Ast.eq cl cr :: acc
            | None -> acc)
          sl []
        |> List.rev
      in
      let sources = Vmap.union (fun _ cl _ -> Some cl) sl sr in
      (Ast.Join { left = tl; right = tr; on }, sources)
    | Ppr_core.Plan.Project (sub, kept) ->
      let tsub, ssub = emit sub in
      let kept = List.sort_uniq Stdlib.compare kept in
      (* SQL cannot SELECT zero columns: keep one witness variable. *)
      let kept =
        if kept = [] then [ fst (Vmap.min_binding ssub) ] else kept
      in
      incr subquery_counter;
      let alias = "t" ^ string_of_int !subquery_counter in
      let body =
        {
          Ast.select = List.map (fun v -> Vmap.find v ssub) kept;
          from = [ tsub ];
          where = [];
        }
      in
      let sources =
        List.fold_left
          (fun acc v -> Vmap.add v (Ast.col alias (namer v)) acc)
          Vmap.empty kept
      in
      (Ast.Subquery { body; alias }, sources)
  in
  let top tree sources =
    let select =
      match cq.Cq.free with
      | [] -> [ snd (Vmap.min_binding sources) ]
      | free -> List.map (fun v -> Vmap.find v sources) free
    in
    { Ast.select; from = [ tree ]; where = [] }
  in
  match plan with
  | Ppr_core.Plan.Project (sub, kept)
    when List.sort_uniq Stdlib.compare kept
         = List.sort_uniq Stdlib.compare cq.Cq.free
         && kept <> [] ->
    let tsub, ssub = emit sub in
    {
      Ast.select = List.map (fun v -> Vmap.find v ssub) (List.sort_uniq Stdlib.compare kept);
      from = [ tsub ];
      where = [];
    }
  | Ppr_core.Plan.Project (sub, []) when cq.Cq.free = [] ->
    let tsub, ssub = emit sub in
    top tsub ssub
  | plan ->
    let tree, sources = emit plan in
    top tree sources

let bucket_elimination ?(namer = default_namer) ?rng ?order cq =
  of_plan ~namer cq (Ppr_core.Bucket.compile ?rng ?order cq)
