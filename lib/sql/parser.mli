(** Parsing the SQL fragment this library emits, back into {!Ast}.

    Accepts exactly the grammar of {!Pretty} (and insignificant
    whitespace variations): [SELECT DISTINCT] column lists, FROM lists
    over table references with column renamings, parenthesized
    [JOIN ... ON] trees, [( SELECT ... ) AS t] subqueries, [TRUE] and
    conjunctions of column equalities, and an optional [WHERE]. The
    round trip [parse (Pretty.query q) = Ok q] holds structurally for
    every query the translators produce. *)

type error = { position : int; message : string }

val query : string -> (Ast.query, error) result
(** Parse one statement (with or without the trailing semicolon). *)

val query_exn : string -> Ast.query
(** @raise Failure with a position-annotated message. *)

val pp_error : Format.formatter -> error -> unit
