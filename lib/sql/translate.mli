(** The paper's five CQ-to-SQL translation schemes (Sections 3, 4, 6.1),
    plus a generic plan-to-SQL emitter.

    Table aliases are [e1, e2, ...] in atom listing order; subquery
    aliases are [t1, t2, ...] in order of creation (innermost first).
    Variables print through [namer] (default: the paper's 1-based [vN]).

    Boolean queries (empty target schema) are emitted in the paper's
    emulated form — SQL cannot select zero columns — by keeping one
    representative variable; the representative is the first variable of
    the relevant atom, which may differ from the appendix's sample output
    (the appendix's own choice varies between methods). *)

val naive : ?namer:(int -> string) -> Conjunctive.Cq.t -> Ast.query
(** All atoms in the FROM clause; every non-first occurrence of a
    variable equated with its first occurrence in the WHERE clause. *)

val straightforward : ?namer:(int -> string) -> Conjunctive.Cq.t -> Ast.query
(** Explicit left-deep JOIN ... ON chain, listed in reverse order with
    parentheses forcing evaluation from [e1] upward, as in Appendix A.2. *)

val early_projection : ?namer:(int -> string) -> Conjunctive.Cq.t -> Ast.query
(** Nested subqueries cut at each variable's last occurrence; each
    subquery SELECTs the variables live at its top atom, so a dying
    variable is dropped by the enclosing SELECT — the appendix's exact
    scheme (Appendix A.3). *)

val reordering :
  ?namer:(int -> string) -> ?rng:Graphlib.Rng.t -> Conjunctive.Cq.t -> Ast.query
(** {!early_projection} applied to the greedily permuted atom list
    (Appendix A.4). *)

val bucket_elimination :
  ?namer:(int -> string) -> ?rng:Graphlib.Rng.t -> ?order:int array ->
  Conjunctive.Cq.t -> Ast.query
(** One subquery per processed bucket along the MCS variable order
    (Appendix A.5), via {!of_plan} on the bucket-elimination plan. *)

val of_plan :
  ?namer:(int -> string) -> Conjunctive.Cq.t -> Ppr_core.Plan.t -> Ast.query
(** Emit any plan as SQL: joins become JOIN ... ON on the shared
    variables, projections become subquery boundaries. A projection to
    zero columns keeps one witness column (SQL cannot select none); the
    enclosing query never references it.
    @raise Invalid_argument on an atom with a repeated variable. *)
