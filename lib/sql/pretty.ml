let column (c : Ast.column) = c.Ast.qualifier ^ "." ^ c.Ast.name

let equality (e : Ast.equality) = column e.Ast.left ^ " = " ^ column e.Ast.right

let conditions = function
  | [] -> "TRUE"
  | conds -> String.concat " AND " (List.map equality conds)

let table_ref (r : Ast.table_ref) =
  Printf.sprintf "%s %s (%s)" r.Ast.relation r.Ast.alias
    (String.concat "," r.Ast.columns)

let indentation depth = String.make (3 * depth) ' '

(* Subqueries open an indented block; joins between plain relations stay
   inline, with the right operand parenthesized when it is itself a join
   (the paper's evaluation-forcing parentheses). *)
let rec render_tree buf depth tree =
  match tree with
  | Ast.Relation _ | Ast.Subquery _ -> render_operand buf depth tree
  | Ast.Join { left; right; on } ->
    render_operand buf depth left;
    Buffer.add_string buf " JOIN ";
    render_operand buf depth right;
    Buffer.add_string buf (" ON (" ^ conditions on ^ ")")

and render_operand buf depth tree =
  match tree with
  | Ast.Relation r -> Buffer.add_string buf (table_ref r)
  | Ast.Join _ ->
    Buffer.add_string buf "(";
    render_tree buf depth tree;
    Buffer.add_string buf ")"
  | Ast.Subquery { body; alias } ->
    Buffer.add_string buf "(\n";
    render_query buf (depth + 1) body;
    Buffer.add_string buf ("\n" ^ indentation depth ^ ") AS " ^ alias)

and render_query buf depth q =
  let pad = indentation depth in
  Buffer.add_string buf
    (pad ^ "SELECT DISTINCT "
    ^ String.concat ", " (List.map column q.Ast.select));
  Buffer.add_string buf ("\n" ^ pad ^ "FROM ");
  List.iteri
    (fun i tree ->
      if i > 0 then Buffer.add_string buf (",\n" ^ pad ^ "     ");
      render_tree buf depth tree)
    q.Ast.from;
  if q.Ast.where <> [] then
    Buffer.add_string buf ("\n" ^ pad ^ "WHERE " ^ conditions q.Ast.where)

let query q =
  let buf = Buffer.create 256 in
  render_query buf 0 q;
  Buffer.add_string buf ";\n";
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (query q)
