type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "SQL parse error at offset %d: %s" e.position e.message

exception Err of error

let fail position message = raise (Err { position; message })

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)

type token =
  | Ident of string
  | Kw of string  (* uppercased keyword *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Equals
  | Semicolon

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "JOIN"; "ON"; "AS"; "AND"; "TRUE" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let push position token = tokens := (position, token) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' then (push !i Lparen; incr i)
    else if c = ')' then (push !i Rparen; incr i)
    else if c = ',' then (push !i Comma; incr i)
    else if c = '.' then (push !i Dot; incr i)
    else if c = '=' then (push !i Equals; incr i)
    else if c = ';' then (push !i Semicolon; incr i)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then push start (Kw upper)
      else push start (Ident word)
    end
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Recursive descent over the token list.                              *)

type state = { mutable tokens : (int * token) list; length : int }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail st.length "unexpected end of input"
  | t :: rest ->
    st.tokens <- rest;
    t

let expect st expected describe =
  let position, token = advance st in
  if token <> expected then fail position ("expected " ^ describe)

let expect_kw st kw = expect st (Kw kw) kw

let ident st =
  match advance st with
  | _, Ident name -> name
  | position, _ -> fail position "expected an identifier"

let column st =
  let qualifier = ident st in
  expect st Dot "'.'";
  let name = ident st in
  { Ast.qualifier; name }

let rec comma_separated st parse =
  let first = parse st in
  match peek st with
  | Some (_, Comma) ->
    ignore (advance st);
    first :: comma_separated st parse
  | _ -> [ first ]

let equality st =
  let left = column st in
  expect st Equals "'='";
  let right = column st in
  { Ast.left; right }

let conditions st =
  match peek st with
  | Some (_, Kw "TRUE") ->
    ignore (advance st);
    []
  | _ ->
    let rec more acc =
      match peek st with
      | Some (_, Kw "AND") ->
        ignore (advance st);
        more (equality st :: acc)
      | _ -> List.rev acc
    in
    more [ equality st ]

let table_ref st name =
  let alias = ident st in
  expect st Lparen "'('";
  let columns = comma_separated st ident in
  expect st Rparen "')'";
  { Ast.relation = name; alias; columns }

(* A FROM operand: a table reference, a parenthesized join tree, or a
   parenthesized subquery with an alias. After an operand, an optional
   JOIN makes the operand the left side of a binary join. *)
let rec from_tree st =
  let left = operand st in
  match peek st with
  | Some (_, Kw "JOIN") ->
    ignore (advance st);
    let right = operand st in
    expect_kw st "ON";
    expect st Lparen "'('";
    let on = conditions st in
    expect st Rparen "')'";
    Ast.Join { left; right; on }
  | _ -> left

and operand st =
  match peek st with
  | Some (_, Ident name) ->
    ignore (advance st);
    Ast.Relation (table_ref st name)
  | Some (_, Lparen) -> (
    ignore (advance st);
    match peek st with
    | Some (_, Kw "SELECT") ->
      let body = query_body st in
      expect st Rparen "')'";
      expect_kw st "AS";
      let alias = ident st in
      Ast.Subquery { body; alias }
    | _ ->
      let tree = from_tree st in
      expect st Rparen "')'";
      tree)
  | Some (position, _) -> fail position "expected a table, join or subquery"
  | None -> fail st.length "unexpected end of input in FROM"

and query_body st =
  expect_kw st "SELECT";
  expect_kw st "DISTINCT";
  let select = comma_separated st column in
  expect_kw st "FROM";
  let from = comma_separated st from_tree in
  let where =
    match peek st with
    | Some (_, Kw "WHERE") ->
      ignore (advance st);
      conditions st
    | _ -> []
  in
  { Ast.select; from; where }

let query src =
  try
    let st = { tokens = tokenize src; length = String.length src } in
    let q = query_body st in
    (match peek st with
    | Some (_, Semicolon) -> ignore (advance st)
    | _ -> ());
    (match peek st with
    | Some (position, _) -> fail position "trailing input after statement"
    | None -> ());
    Ok q
  with Err e -> Error e

let query_exn src =
  match query src with
  | Ok q -> q
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
