type column = { qualifier : string; name : string }
type equality = { left : column; right : column }

type table_ref = { relation : string; alias : string; columns : string list }

type from_tree =
  | Relation of table_ref
  | Join of { left : from_tree; right : from_tree; on : equality list }
  | Subquery of { body : query; alias : string }

and query = {
  select : column list;
  from : from_tree list;
  where : equality list;
}

let col qualifier name = { qualifier; name }
let eq left right = { left; right }

let aliases q =
  let acc = ref [] in
  let push a = if not (List.mem a !acc) then acc := a :: !acc in
  let rec tree = function
    | Relation r -> push r.alias
    | Join { left; right; _ } ->
      tree left;
      tree right
    | Subquery { body; alias } ->
      query body;
      push alias
  and query q = List.iter tree q.from in
  query q;
  List.rev !acc

let rec subquery_count_tree = function
  | Relation _ -> 0
  | Join { left; right; _ } -> subquery_count_tree left + subquery_count_tree right
  | Subquery { body; _ } -> 1 + subquery_count body

and subquery_count q =
  List.fold_left (fun acc t -> acc + subquery_count_tree t) 0 q.from

let rec join_count_tree = function
  | Relation _ -> 0
  | Join { left; right; _ } -> 1 + join_count_tree left + join_count_tree right
  | Subquery { body; _ } -> join_count body

and join_count q =
  List.fold_left (fun acc t -> acc + join_count_tree t) 0 q.from
