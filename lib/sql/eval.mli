(** Evaluating SQL ASTs against a database — the stand-in for the paper's
    PostgreSQL backend.

    JOIN trees evaluate bottom-up in their parenthesized order (hash
    joins, as the paper configured); a naive-style FROM list with WHERE
    equalities is folded left-deep, each equality applied as soon as both
    of its columns are in scope — the behaviour of a planner that keeps
    the textual order. Every SELECT is DISTINCT. The evaluator exists to
    cross-check the SQL translators against direct plan execution; they
    must agree tuple-for-tuple. *)

val query :
  ?ctx:Relalg.Ctx.t ->
  Conjunctive.Database.t -> Ast.query -> string list * Relalg.Relation.t
(** Returns the output column names (bare, in SELECT order) and the
    result; the relation's schema is positional — attribute [i] is the
    [i]-th SELECT column.
    @raise Failure on an unknown relation, alias or column.
    @raise Relalg.Limits.Exceeded when a guard trips. *)

val nonempty : ?ctx:Relalg.Ctx.t -> Conjunctive.Database.t -> Ast.query -> bool
