(** SQL rendering in the paper's Appendix A style: [SELECT DISTINCT] on
    its own line, nested subqueries indented by three spaces, [ON]
    conditions after the closing parenthesis of the joined item, an empty
    condition printed as [TRUE], and a terminating semicolon. *)

val query : Ast.query -> string
(** The full statement, semicolon-terminated, trailing newline. *)

val column : Ast.column -> string
val equality : Ast.equality -> string

val pp : Format.formatter -> Ast.query -> unit
