(** Abstract syntax for the SQL fragment the paper emits.

    Only what the five translation schemes need: [SELECT DISTINCT] over a
    [FROM] clause that is either a comma-separated item list with a
    [WHERE] conjunction of column equalities (the naive scheme) or a
    parenthesized [JOIN ... ON] tree with nested subqueries (all other
    schemes). *)

type column = { qualifier : string; name : string }
(** [e1.v2] — [qualifier] is a table alias or a subquery alias. *)

type equality = { left : column; right : column }

type table_ref = {
  relation : string;      (** base relation name, e.g. [edge] *)
  alias : string;         (** [e1] *)
  columns : string list;  (** renamed column list, e.g. [(v1, v2)] *)
}

type from_tree =
  | Relation of table_ref
  | Join of { left : from_tree; right : from_tree; on : equality list }
      (** an empty [on] prints as [ON (TRUE)], as in the paper's
          Appendix A.4 *)
  | Subquery of { body : query; alias : string }

and query = {
  select : column list;    (** always [SELECT DISTINCT] *)
  from : from_tree list;   (** comma-separated *)
  where : equality list;   (** empty for join-style queries *)
}

val col : string -> string -> column
val eq : column -> column -> equality

val aliases : query -> string list
(** Every table and subquery alias, in first-appearance order.
    Useful for checking alias uniqueness. *)

val subquery_count : query -> int
val join_count : query -> int
