(** Query homomorphisms, containment, and canonical databases
    (Chandra–Merlin).

    The paper's introduction contrasts structural optimization with the
    Chandra–Merlin approach of minimizing the {e number} of joins, which
    needs an NP-hard homomorphism test; its conclusion notes that the
    test is itself a conjunctive query over a {e canonical database} — so
    the bucket-elimination machinery of this library is exactly the tool
    to evaluate it. This module closes that loop: homomorphism existence
    is decided by running the source query, compiled with
    {!Ppr_core.Bucket}, over the target's canonical database, and a
    witness is extracted by pinning one variable at a time.

    Conventions: a homomorphism [h : Q1 -> Q2] maps [Q1]'s variables to
    [Q2]'s so that every atom of [Q1] lands on an atom of [Q2] and the
    i-th free variable of [Q1] maps to the i-th free variable of [Q2].
    Its existence is equivalent to [Q2]'s answers being contained in
    [Q1]'s over every database. *)

val canonical_database :
  Conjunctive.Cq.t -> Conjunctive.Database.t * (int, int) Hashtbl.t
(** The frozen query: each variable becomes a dense constant (the
    returned mapping), each atom a tuple of its relation. Relations
    sharing a symbol accumulate one tuple per atom. *)

val homomorphism :
  from_:Conjunctive.Cq.t -> into:Conjunctive.Cq.t -> (int * int) list option
(** A homomorphism from [from_] to [into], as an assignment from
    [from_]'s variables to [into]'s, or [None] if there is none.
    @raise Invalid_argument if the target schemas have different sizes
    or the queries disagree on a relation symbol's arity. *)

val exists_homomorphism :
  from_:Conjunctive.Cq.t -> into:Conjunctive.Cq.t -> bool

val contained : Conjunctive.Cq.t -> Conjunctive.Cq.t -> bool
(** [contained q1 q2]: over every database, [q1]'s answers are a subset
    of [q2]'s — decided as [exists_homomorphism ~from_:q2 ~into:q1]. *)

val equivalent : Conjunctive.Cq.t -> Conjunctive.Cq.t -> bool
