module Cq = Conjunctive.Cq

let without cq index =
  let atoms = List.filteri (fun i _ -> i <> index) cq.Cq.atoms in
  let bound = List.concat_map (fun a -> a.Cq.vars) atoms in
  if atoms = [] then None
  else if List.for_all (fun v -> List.mem v bound) cq.Cq.free then
    Some { cq with Cq.atoms }
  else None

(* Dropping atom [i] keeps the query equivalent iff the original maps
   homomorphically into the reduced query (the reverse inclusion is the
   identity homomorphism). *)
let droppable cq index =
  match without cq index with
  | None -> None
  | Some reduced ->
    if Homomorphism.exists_homomorphism ~from_:cq ~into:reduced then
      Some reduced
    else None

let minimize cq =
  let rec shrink current removed =
    let m = Cq.atom_count current in
    let rec try_atom i =
      if i >= m then None
      else
        match droppable current i with
        | Some reduced -> Some reduced
        | None -> try_atom (i + 1)
    in
    match try_atom 0 with
    | Some reduced -> shrink reduced (removed + 1)
    | None -> (current, removed)
  in
  shrink cq 0

let is_minimal cq =
  let m = Cq.atom_count cq in
  let rec go i = i >= m || (droppable cq i = None && go (i + 1)) in
  go 0
