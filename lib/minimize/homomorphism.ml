module Cq = Conjunctive.Cq
module Database = Conjunctive.Database
module Relation = Relalg.Relation
module Schema = Relalg.Schema

let canonical_database cq =
  let code = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace code v i) (Cq.vars cq);
  let db = Database.create () in
  List.iter
    (fun atom ->
      let arity = List.length atom.Cq.vars in
      let rel =
        if Database.mem db atom.Cq.rel then begin
          let existing = Database.find db atom.Cq.rel in
          if Relation.arity existing <> arity then
            invalid_arg
              (Printf.sprintf
                 "Homomorphism: relation %s used with arities %d and %d"
                 atom.Cq.rel (Relation.arity existing) arity);
          existing
        end
        else begin
          let fresh = Relation.create (Schema.of_list (List.init arity Fun.id)) in
          Database.add db atom.Cq.rel fresh;
          fresh
        end
      in
      let tuple =
        Array.of_list (List.map (Hashtbl.find code) atom.Cq.vars)
      in
      ignore (Relation.add rel tuple))
    cq.Cq.atoms;
  (db, code)

let check_compatible ~from_ ~into =
  if List.length from_.Cq.free <> List.length into.Cq.free then
    invalid_arg "Homomorphism: target schemas have different sizes";
  List.iter
    (fun atom ->
      List.iter
        (fun atom' ->
          if
            atom.Cq.rel = atom'.Cq.rel
            && List.length atom.Cq.vars <> List.length atom'.Cq.vars
          then
            invalid_arg
              (Printf.sprintf "Homomorphism: relation %s used with two arities"
                 atom.Cq.rel))
        into.Cq.atoms)
    from_.Cq.atoms

(* Pin variable [v] of the source query to constant [value] by adding a
   fresh singleton unary relation. *)
let pin db cq counter v value =
  incr counter;
  let name = Printf.sprintf "__pin_%d" !counter in
  Database.add db name (Relation.of_list (Schema.of_list [ 0 ]) [ [ value ] ]);
  { cq with Cq.atoms = { Cq.rel = name; vars = [ v ] } :: cq.Cq.atoms }

let decide db cq =
  (* Evaluate as a Boolean query: drop the target schema, which the
     caller has already pinned. *)
  let boolean = { cq with Cq.free = [] } in
  Ppr_core.Exec.nonempty db (Ppr_core.Bucket.compile boolean)

let homomorphism ~from_ ~into =
  check_compatible ~from_ ~into;
  if from_.Cq.atoms = [] then Some []
  else begin
    let db, code = canonical_database into in
    (* A relation symbol used by [from_] but absent from [into] is empty
       in the canonical database: no homomorphism can exist. *)
    if
      List.exists
        (fun atom -> not (Database.mem db atom.Cq.rel))
        from_.Cq.atoms
    then None
    else begin
    let counter = ref 0 in
    (* Head condition: free variables correspond pointwise. *)
    let pinned_head =
      List.fold_left2
        (fun q v_from v_into -> pin db q counter v_from (Hashtbl.find code v_into))
        from_ from_.Cq.free into.Cq.free
    in
    if not (decide db pinned_head) then None
    else begin
      (* Extract a witness by fixing variables one at a time. *)
      let candidates =
        Hashtbl.fold (fun _ c acc -> c :: acc) code []
        |> List.sort_uniq Stdlib.compare
      in
      let decode =
        let table = Hashtbl.create 16 in
        Hashtbl.iter (fun v c -> Hashtbl.replace table c v) code;
        Hashtbl.find table
      in
      let assignment = ref [] in
      let current = ref pinned_head in
      List.iter
        (fun v ->
          let value =
            List.find
              (fun c -> decide db (pin db !current counter v c))
              candidates
          in
          current := pin db !current counter v value;
          assignment := (v, decode value) :: !assignment)
        (Cq.vars from_);
      Some (List.rev !assignment)
    end
    end
  end

let exists_homomorphism ~from_ ~into = homomorphism ~from_ ~into <> None

let contained q1 q2 = exists_homomorphism ~from_:q2 ~into:q1

let equivalent q1 q2 = contained q1 q2 && contained q2 q1
