(** Join minimization: computing the core of a conjunctive query
    (Chandra–Merlin; the paper's §7 third research direction).

    The {e core} of a query is an equivalent subquery with the fewest
    atoms; it is unique up to renaming. It is computed by repeatedly
    dropping an atom when the remaining query still maps homomorphically
    onto... more precisely, when the full query maps into the reduced one
    (which, with the trivial inclusion the other way, makes them
    equivalent). Every containment test runs through
    {!Homomorphism.exists_homomorphism}, i.e., through bucket
    elimination over a canonical database — the application the paper
    proposes for its own techniques. *)

val minimize : Conjunctive.Cq.t -> Conjunctive.Cq.t * int
(** The core (atoms keep their relative listing order) and the number of
    atoms removed. An atom whose removal would orphan a free variable is
    never dropped. *)

val is_minimal : Conjunctive.Cq.t -> bool
(** No single atom can be dropped. Cores are exactly the minimal
    queries. *)
