(** A fixed-size domain pool over OCaml 5 stdlib primitives.

    The pool owns [num_domains - 1] worker domains blocked on a shared
    work queue; the domain that calls {!run} is the remaining member and
    participates in draining its own batch, so a pool of size 1 spawns
    nothing and runs everything inline. Batches are synchronous: {!run}
    returns only when every task of the batch has finished, which is the
    shape the join kernel and the sweep fan-out need (fork/join, no
    detached futures).

    Exception discipline: every task of a batch is attempted even when an
    earlier one fails; the first failure {e in task order} (not
    completion order) is re-raised on the calling domain with its
    original backtrace, so [run] behaves like [List.map] as far as the
    caller can observe.

    Nested calls never deadlock: a task that itself calls {!run} on any
    pool (detected with a domain-local flag) runs its sub-batch inline on
    the worker rather than enqueueing — the pool is a flat fan-out, not a
    scheduler. *)

type t

val create : ?num_domains:int -> ?grain:int -> unit -> t
(** [create ~num_domains ()] spawns [num_domains - 1] workers.
    [num_domains] defaults to {!Domain.recommended_domain_count} and is
    clamped to at least 1; it counts the calling domain, so it is the
    degree of parallelism a batch can reach. [grain] is advisory:
    kernels consult {!grain} and stay sequential below that many input
    rows, where partitioning costs more than it buys, and the experiment
    sweeps read it as a probe-measured work budget. It defaults to the
    [PPR_PAR_GRAIN] environment variable when that holds a positive
    integer, else [16384]; an explicit argument beats the environment.
    Workers idle on a condition variable — a pool at rest burns no
    CPU. *)

val size : t -> int
(** The degree of parallelism (workers + the calling domain), >= 1. *)

val grain : t -> int
(** The advisory sequential-below-this threshold given at {!create}. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Run the thunks to completion, in parallel up to {!size}, and return
    their results in input order. Runs inline (still collecting every
    result before re-raising) when the pool has size 1, when called from
    inside a pool task, or when the batch has fewer than 2 tasks.
    @raise e the first (by task index) exception any task raised. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] = [run pool (List.map (fun x () -> f x) xs)]. *)

val current_is_worker : unit -> bool
(** Whether the calling domain is currently inside a pool task (in which
    case nested {!run} calls execute inline). *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; also registered with
    [at_exit], so dropping a pool without shutting it down only costs the
    workers until process exit. Calling {!run} after shutdown runs the
    batch inline. *)
