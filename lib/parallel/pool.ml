(* Fixed-size domain pool: one shared FIFO of packaged tasks, workers
   blocked on a condition variable, the submitting domain draining its
   own batch alongside them. Everything is stdlib (Domain / Mutex /
   Condition / Atomic via the packaged results) — no external scheduler.

   A task is a [unit -> unit] closure that has already captured where to
   store its result and NEVER raises: exceptions are caught inside the
   closure and stored as [Error (exn, backtrace)], then re-raised on the
   submitting domain once the whole batch is finished. *)

type t = {
  lock : Mutex.t;
  work : Condition.t; (* signalled when the queue gains tasks or on stop *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array; (* joined exactly once, by shutdown *)
  size : int;
  grain : int;
}

(* True while the current domain is executing a pool task (worker or
   submitter alike); nested [run]s then execute inline so a task can
   never block waiting for queue slots its own batch occupies. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let current_is_worker () = Domain.DLS.get in_task

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.lock
    done;
    if Queue.is_empty pool.queue then (* stop, and nothing left to drain *)
      Mutex.unlock pool.lock
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      task ();
      loop ()
    end
  in
  loop ()

let size t = t.size
let grain t = t.grain

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.workers <- [||];
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join workers

(* The default advisory grain. PPR_PAR_GRAIN overrides it so the
   sequential-fallback threshold of every consumer (partitioned joins,
   sweep fan-outs) can be tuned per deployment without code changes; an
   explicit [~grain] argument still wins. *)
let default_grain () =
  match Sys.getenv_opt "PPR_PAR_GRAIN" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some g when g > 0 -> g
    | _ -> 16384)
  | None -> 16384

let create ?num_domains ?grain () =
  let grain = match grain with Some g -> g | None -> default_grain () in
  let size =
    max 1
      (match num_domains with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())
  in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      size;
      grain = max 1 grain;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  at_exit (fun () -> shutdown pool);
  pool

(* Shared by the inline and parallel paths: every slot was attempted;
   surface the results in order, re-raising the first failure by index. *)
let collect results =
  let n = Array.length results in
  let rec first_error i =
    if i >= n then None
    else
      match results.(i) with
      | Some (Error eb) -> Some eb
      | _ -> first_error (i + 1)
  in
  match first_error 0 with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | _ -> assert false (* batch finished *))
         results)

let attempt f =
  let was = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  let r = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
  Domain.DLS.set in_task was;
  r

let run_inline thunks =
  collect (Array.map (fun f -> Some (attempt f)) (Array.of_list thunks))

let run pool thunks =
  let n = List.length thunks in
  if n = 0 then []
  else if n = 1 || pool.size = 1 || pool.stop || current_is_worker () then
    run_inline thunks
  else begin
    let results = Array.make n None in
    let pending = ref n in
    let batch_done = Condition.create () in
    let task i f () =
      let r = attempt f in
      Mutex.lock pool.lock;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.broadcast batch_done;
      Mutex.unlock pool.lock
    in
    Mutex.lock pool.lock;
    List.iteri (fun i f -> if i > 0 then Queue.push (task i f) pool.queue) thunks;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    (* The submitter runs the first task itself, then helps drain the
       queue; once it is empty it waits for the in-flight stragglers. *)
    (match thunks with f0 :: _ -> task 0 f0 () | [] -> ());
    let rec help () =
      Mutex.lock pool.lock;
      if not (Queue.is_empty pool.queue) then begin
        let t = Queue.pop pool.queue in
        Mutex.unlock pool.lock;
        t ();
        help ()
      end
      else begin
        while !pending > 0 do
          Condition.wait batch_done pool.lock
        done;
        Mutex.unlock pool.lock
      end
    in
    help ();
    collect results
  end

let map pool f xs = run pool (List.map (fun x () -> f x) xs)
