(** A chronological backtracking solver with forward checking — the
    search-based counterpart to bucket elimination ("resolution versus
    search", Rish–Dechter [29]). Used as an independent oracle to
    cross-check every query-evaluation strategy in the test suite. *)

type result = Satisfiable of int array | Unsatisfiable

val solve : ?var_order:int array -> Instance.t -> result
(** Variables are assigned along [var_order] (default: most-constrained
    first by static degree); forward checking prunes neighbor domains.
    Complete: always terminates with the correct verdict. *)

val count_solutions : ?limit:int -> Instance.t -> int
(** Number of satisfying assignments, stopping at [limit] (default
    [max_int]). Exponential; small instances only. *)
