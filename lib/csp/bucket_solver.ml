module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Cq = Conjunctive.Cq

let satisfiable ?rng ?ctx (t : Instance.t) =
  let cq, db = Instance.to_query t in
  let plan = Ppr_core.Bucket.compile ?rng cq in
  Ppr_core.Exec.nonempty ?ctx db plan

(* Fix v := value by adding a unary constraint. *)
let restrict t v value =
  let allowed = Relation.of_list (Schema.of_list [ 0 ]) [ [ value ] ] in
  {
    t with
    Instance.constraints =
      { Instance.scope = [ v ]; allowed } :: t.Instance.constraints;
  }

let solution ?rng ?ctx (t : Instance.t) =
  if not (satisfiable ?rng ?ctx t) then None
  else begin
    let current = ref t in
    let assignment = Array.make t.Instance.num_vars 0 in
    for v = 0 to t.Instance.num_vars - 1 do
      let value =
        List.find
          (fun value -> satisfiable ?rng ?ctx (restrict !current v value))
          t.Instance.domain
      in
      assignment.(v) <- value;
      current := restrict !current v value
    done;
    Some assignment
  end
