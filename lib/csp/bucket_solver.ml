module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Cq = Conjunctive.Cq

let satisfiable ?rng ?ctx (t : Instance.t) =
  let cq, db = Instance.to_query t in
  let plan = Ppr_core.Bucket.compile ?rng cq in
  Ppr_core.Exec.nonempty ?ctx db plan

(* Fix v := value by adding a unary constraint. *)
let restrict t v value =
  let allowed = Relation.of_list (Schema.of_list [ 0 ]) [ [ value ] ] in
  {
    t with
    Instance.constraints =
      { Instance.scope = [ v ]; allowed } :: t.Instance.constraints;
  }

let solution ?rng ?ctx (t : Instance.t) =
  if not (satisfiable ?rng ?ctx t) then None
  else begin
    let current = ref t in
    let assignment = Array.make t.Instance.num_vars 0 in
    (* Each variable should admit some value once the instance as a whole
       is satisfiable — but an empty domain, or resource pressure between
       the up-front check and this probe, can leave the search empty-
       handed. That is "no solution found", not an unhandled [Not_found]
       escaping to the caller; typed [Limits.Abort]s raised by the probes
       (deadlines, budgets, injected faults) still propagate as such. *)
    let rec extend v =
      if v = t.Instance.num_vars then Some assignment
      else
        match
          List.find_opt
            (fun value -> satisfiable ?rng ?ctx (restrict !current v value))
            t.Instance.domain
        with
        | None -> None
        | Some value ->
          assignment.(v) <- value;
          current := restrict !current v value;
          extend (v + 1)
    in
    extend 0
  end
