module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

type result = Satisfiable of int array | Unsatisfiable

let default_order (t : Instance.t) =
  let degree = Array.make t.Instance.num_vars 0 in
  List.iter
    (fun c ->
      List.iter (fun v -> degree.(v) <- degree.(v) + 1) c.Instance.scope)
    t.Instance.constraints;
  let order = Array.init t.Instance.num_vars Fun.id in
  Array.sort (fun a b -> compare (degree.(b), a) (degree.(a), b)) order;
  order

(* A constraint supports the partial assignment when some allowed tuple
   matches every already-assigned scope position. The relations here are
   tiny (paper setting), so scanning is fine. *)
let supported (assignment : int array) (c : Instance.constraint_) =
  let scope = Array.of_list c.Instance.scope in
  Relation.fold
    (fun tup ok ->
      ok
      ||
      let matches = ref true in
      Array.iteri
        (fun pos v ->
          if assignment.(v) >= 0 && Tuple.get tup pos <> assignment.(v) then
            matches := false)
        scope;
      !matches)
    c.Instance.allowed false

let search ?var_order (t : Instance.t) ~on_solution =
  let order = match var_order with Some o -> o | None -> default_order t in
  if Array.length order <> t.Instance.num_vars then
    invalid_arg "Backtrack: order length mismatch";
  let assignment = Array.make t.Instance.num_vars (-1) in
  let touching = Array.make t.Instance.num_vars [] in
  List.iter
    (fun c ->
      List.iter (fun v -> touching.(v) <- c :: touching.(v)) c.Instance.scope)
    t.Instance.constraints;
  let rec assign depth =
    if depth >= t.Instance.num_vars then on_solution assignment
    else begin
      let v = order.(depth) in
      let rec try_values = function
        | [] -> true
        | value :: rest ->
          assignment.(v) <- value;
          let ok = List.for_all (supported assignment) touching.(v) in
          let keep_going = if ok then assign (depth + 1) else true in
          assignment.(v) <- -1;
          if keep_going then try_values rest else false
      in
      try_values t.Instance.domain
    end
  in
  ignore (assign 0)

let solve ?var_order t =
  let found = ref None in
  let on_solution assignment =
    found := Some (Array.copy assignment);
    false (* stop *)
  in
  (try search ?var_order t ~on_solution with Exit -> ());
  match !found with Some a -> Satisfiable a | None -> Unsatisfiable

let count_solutions ?(limit = max_int) t =
  let count = ref 0 in
  let on_solution _ =
    incr count;
    !count < limit
  in
  search t ~on_solution;
  !count
