(** Constraint-satisfaction instances.

    Solving a CSP is exactly evaluating a Boolean project-join query over
    the constraint relations (Kolaitis–Vardi [26]) — the equivalence the
    paper exploits to import bucket elimination. An instance is a set of
    variables, a shared value universe, and constraints that pair a
    variable scope with an allowed-tuples relation. *)

type constraint_ = {
  scope : int list;             (** distinct variables *)
  allowed : Relalg.Relation.t;  (** arity must equal the scope length *)
}

type t = {
  num_vars : int;
  domain : int list;            (** candidate values for every variable *)
  constraints : constraint_ list;
}

val make : num_vars:int -> domain:int list -> constraints:constraint_ list -> t
(** @raise Invalid_argument on scope/arity mismatch, out-of-range or
    repeated scope variables, or an empty domain. *)

val of_query : Conjunctive.Database.t -> Conjunctive.Cq.t -> t
(** Constraints from atoms (repeated-variable atoms become selections);
    the domain is the union of values in the constraint relations;
    variables are renumbered densely, preserving order. *)

val to_query : t -> Conjunctive.Cq.t * Conjunctive.Database.t
(** The Boolean query whose nonemptiness is this instance's
    satisfiability; one relation per distinct constraint. *)

val satisfied_by : t -> int array -> bool
(** Check a full assignment (indexed by variable). *)
