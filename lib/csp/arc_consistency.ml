module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Tuple = Relalg.Tuple

type domains = (int, Relation.t) Hashtbl.t

type result = { domains : domains; emptied : bool; revisions : int }

(* Directed arcs (x, y, allowed) with allowed over scope [x; y]. *)
let arcs_of (t : Instance.t) =
  List.concat_map
    (fun c ->
      match c.Instance.scope with
      | [ x; y ] ->
        let flipped =
          let schema = Schema.of_list [ 1; 0 ] in
          let rel = Relation.create schema in
          Relation.iter
            (fun tup ->
              ignore
                (Relation.add rel (Tuple.of_list [ Tuple.get tup 1; Tuple.get tup 0 ])))
            c.Instance.allowed;
          rel
        in
        [ (x, y, c.Instance.allowed); (y, x, flipped) ]
      | _ -> [])
    t.Instance.constraints

(* Remove from x's domain the values with no support in y's. *)
let revise domains (x, y, allowed) =
  let dx : Relation.t = Hashtbl.find domains x in
  let dy : Relation.t = Hashtbl.find domains y in
  let supported vx =
    Relation.fold
      (fun tup ok ->
        ok
        || (Tuple.get tup 0 = vx
           && Relation.mem dy (Tuple.of_list [ Tuple.get tup 1 ])))
      allowed false
  in
  let kept = Relalg.Ops.select dx (fun tup -> supported (Tuple.get tup 0)) in
  if Relation.cardinality kept < Relation.cardinality dx then begin
    Hashtbl.replace domains x kept;
    true
  end
  else false

let run (t : Instance.t) =
  let domains : domains = Hashtbl.create t.Instance.num_vars in
  for v = 0 to t.Instance.num_vars - 1 do
    Hashtbl.replace domains v
      (Relation.of_list (Schema.of_list [ 0 ])
         (List.map (fun value -> [ value ]) t.Instance.domain))
  done;
  (* Unary constraints seed the domains. *)
  List.iter
    (fun c ->
      match c.Instance.scope with
      | [ x ] ->
        let dx = Hashtbl.find domains x in
        Hashtbl.replace domains x
          (Relalg.Ops.select dx (fun tup -> Relation.mem c.Instance.allowed tup))
      | _ -> ())
    t.Instance.constraints;
  let arcs = arcs_of t in
  let queue = Queue.create () in
  List.iter (fun arc -> Queue.add arc queue) arcs;
  let revisions = ref 0 in
  let emptied = ref false in
  while not (Queue.is_empty queue || !emptied) do
    let ((x, _, _) as arc) = Queue.pop queue in
    incr revisions;
    if revise domains arc then begin
      if Relation.is_empty (Hashtbl.find domains x) then emptied := true
      else
        (* Re-enqueue arcs pointing at x. *)
        List.iter
          (fun ((_, y, _) as other) -> if y = x then Queue.add other queue)
          arcs
    end
  done;
  { domains; emptied = !emptied; revisions = !revisions }

let is_arc_consistent t =
  let { domains; emptied; _ } = run t in
  (not emptied)
  && Hashtbl.fold
       (fun _ d acc ->
         acc && Relation.cardinality d = List.length t.Instance.domain)
       domains true
