module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Tuple = Relalg.Tuple
module Cq = Conjunctive.Cq
module Database = Conjunctive.Database

type constraint_ = { scope : int list; allowed : Relation.t }

type t = {
  num_vars : int;
  domain : int list;
  constraints : constraint_ list;
}

let make ~num_vars ~domain ~constraints =
  if domain = [] then invalid_arg "Instance.make: empty domain";
  List.iter
    (fun c ->
      if List.length c.scope <> Relation.arity c.allowed then
        invalid_arg "Instance.make: scope/arity mismatch";
      if List.sort_uniq Stdlib.compare c.scope <> List.sort Stdlib.compare c.scope
      then invalid_arg "Instance.make: repeated variable in scope";
      List.iter
        (fun v ->
          if v < 0 || v >= num_vars then
            invalid_arg "Instance.make: scope variable out of range")
        c.scope)
    constraints;
  { num_vars; domain; constraints }

let of_query db cq =
  let vars = Cq.vars cq in
  let renumber = Hashtbl.create (List.length vars) in
  List.iteri (fun i v -> Hashtbl.add renumber v i) vars;
  let constraints =
    List.map
      (fun atom ->
        let rel = Database.eval_atom db atom in
        {
          scope = List.map (Hashtbl.find renumber) (Cq.atom_vars atom);
          allowed = rel;
        })
      cq.Cq.atoms
  in
  let domain =
    List.sort_uniq Stdlib.compare
      (List.concat_map
         (fun c ->
           Relation.fold (fun tup acc -> Tuple.to_list tup @ acc) c.allowed [])
         constraints)
  in
  let domain = if domain = [] then [ 0 ] else domain in
  make ~num_vars:(List.length vars) ~domain ~constraints

let to_query t =
  let db = Database.create () in
  let atoms =
    List.mapi
      (fun i c ->
        let name = Printf.sprintf "c%d" i in
        (* Base relations are positional: columns 0..k-1. *)
        let schema = Schema.of_list (List.init (List.length c.scope) Fun.id) in
        let rel = Relation.create ~size_hint:(Relation.cardinality c.allowed) schema in
        Relation.iter (fun tup -> ignore (Relation.add rel tup)) c.allowed;
        Database.add db name rel;
        { Cq.rel = name; vars = c.scope })
      t.constraints
  in
  (Cq.make ~atoms ~free:[], db)

let satisfied_by t assignment =
  if Array.length assignment <> t.num_vars then
    invalid_arg "Instance.satisfied_by: assignment length mismatch";
  List.for_all
    (fun c ->
      let tup = Array.of_list (List.map (fun v -> assignment.(v)) c.scope) in
      Relation.mem c.allowed tup)
    t.constraints
