(** Arc consistency (AC-3) over binary constraints.

    The CSP community's standard preprocessing: shrink each variable's
    domain until every value has a support in every binary constraint.
    On a query instance this is exactly the Wong–Youssefi semijoin
    reduction specialised to unary "domain" relations — the test suite
    checks that correspondence — and, like it, it is provably useless on
    the paper's coloring queries (every color supports every other). *)

type domains = (int, Relalg.Relation.t) Hashtbl.t
(** Current domain of each variable, as a unary relation. *)

type result = {
  domains : domains;
  emptied : bool;      (** some domain became empty: unsatisfiable *)
  revisions : int;     (** arcs revised until fixpoint *)
}

val run : Instance.t -> result
(** AC-3 over the instance's binary constraints (wider constraints are
    ignored by this propagator, as in classic AC-3). Initial domains
    are the instance's value list. *)

val is_arc_consistent : Instance.t -> bool
(** No revision shrinks anything: the instance was already arc
    consistent. *)
