(** Bucket elimination as a CSP decision procedure (Dechter [13]) — the
    same algorithm the paper imports into query evaluation, here running
    natively on a CSP instance by translating to the Boolean query and
    executing the bucket-elimination plan. *)

val satisfiable :
  ?rng:Graphlib.Rng.t -> ?ctx:Relalg.Ctx.t -> Instance.t -> bool

val solution :
  ?rng:Graphlib.Rng.t -> ?ctx:Relalg.Ctx.t -> Instance.t ->
  int array option
(** A satisfying assignment, reconstructed by fixing variables one at a
    time and re-running the decision procedure — demonstrating the
    standard reduction of the search problem to the decision problem.
    Returns [None] when no assignment is found (unsatisfiable instance,
    or an empty domain); never leaks a raw [Not_found]. Resource guards
    tripping in the underlying runs still raise {!Relalg.Limits.Abort}
    with their typed reason. *)
