(** Bucket elimination as a CSP decision procedure (Dechter [13]) — the
    same algorithm the paper imports into query evaluation, here running
    natively on a CSP instance by translating to the Boolean query and
    executing the bucket-elimination plan. *)

val satisfiable :
  ?rng:Graphlib.Rng.t -> ?ctx:Relalg.Ctx.t -> Instance.t -> bool

val solution :
  ?rng:Graphlib.Rng.t -> ?ctx:Relalg.Ctx.t -> Instance.t ->
  int array option
(** A satisfying assignment, reconstructed by fixing variables one at a
    time and re-running the decision procedure — demonstrating the
    standard reduction of the search problem to the decision problem. *)
