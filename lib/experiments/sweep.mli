(** Shared machinery for the scalability experiments: run a set of
    methods over generated instances, take medians over seeds, and print
    aligned series — one printed block per paper figure.

    Aborts are tracked per typed reason (deadline, tuple budget,
    cardinality, fuel, injected), and cells can optionally run under the
    {!Supervise} degradation ladder, in which case rescued runs — aborted
    once but completed by a lower rung — are counted separately. *)

type sample = {
  seconds : float;
  status : Ppr_core.Driver.status;
      (** of the final (or only) attempt for this seed *)
  rescued : bool;  (** a ladder rung below the first completed the run *)
  nonempty : bool option;
  plan_width : int;  (** analytic: largest node schema in the plan *)
  max_arity : int;  (** measured: widest intermediate relation *)
}

type cell = {
  median_seconds : float;
      (** median over seeds; aborted seeds count as [infinity] *)
  abort_fraction : float;  (** seeds whose final attempt aborted *)
  abort_breakdown : (string * float) list;
      (** fraction of seeds per {!Relalg.Limits.reason_label}, sorted;
          sums to [abort_fraction] *)
  rescued_fraction : float;  (** seeds rescued by the ladder *)
  nonempty_fraction : float;  (** over the seeds that finished *)
  median_plan_width : int;  (** predicted width, median over seeds *)
  median_max_arity : int;  (** measured width, median over seeds *)
}

type row = {
  row_panel : string;
  row_x : string;
  row_method : string;
  row_cell : cell;
}
(** One printed cell with its coordinates — what {!set_recorder}
    receives. Field names are prefixed so the record can be opened next
    to {!cell}. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val run_cell :
  ?limits_factory:(unit -> Relalg.Limits.t) ->
  ?ladder:Ppr_core.Driver.meth list ->
  ?budget:Supervise.Budget.t ->
  ?feedback:Ppr_core.Cost.feedback ->
  ?observer:(Ppr_core.Cost.observation list -> unit) ->
  ?ctx:Relalg.Ctx.t ->
  seeds:int list ->
  instance:(seed:int -> Conjunctive.Database.t * Conjunctive.Cq.t) ->
  meth:Ppr_core.Driver.meth ->
  unit -> cell
(** One (x-value, method) cell: generate the instance per seed, run the
    method, aggregate. Each seed also seeds the method's own random
    tie-breaking. When [ladder] is given the run goes through
    {!Supervise.run} with that cascade and [budget] (default
    {!Supervise.Budget.default}), and rescues are counted; otherwise a
    single unsupervised run uses [limits_factory]. [ctx] is threaded into
    every run (telemetry spans for each compile/exec/operator, abort
    tallies in the registry, storage backend, join algorithm); its limits
    field is overridden per run by [limits_factory] or the budget.
    [feedback] and [observer] thread an adaptive feedback loop through
    every run (see {!Ppr_core.Driver.run}): corrections are applied at
    compile time, harvested observations are handed to [observer] — the
    adaptive benchmark feeds them into an [Adapt.Store] between passes.
    With a pool installed and [observer] set, seeds still run in
    parallel; the caller's observer must be domain-safe
    ([Adapt.Store.ingest] is). *)

val print_header : title:string -> columns:string list -> x_label:string -> unit

val print_row : x:string -> cells:cell list -> unit
(** An abort-majority cell prints as [abort:REASON] (or [timeout] when
    reasons are mixed); otherwise the median time in seconds with the
    nonempty fraction.

    Concurrency contract: all output sinks (the table printer, the CSV
    channel, the recorder) share one mutex, and a row is emitted as one
    atomic section — table line, CSV line(s) and recorder calls together.
    Rows of the {e same} panel may therefore be printed from concurrent
    pool workers; interleaving can only reorder whole rows, so a CSV
    written under [--jobs N] parses cleanly and is a row permutation of
    the sequential one. {!print_header} swaps the panel the rows are
    attributed to, so distinct panels must still be run in sequence. *)

val print_width_summary : cells:cell list -> unit
(** Append a "predicted width -> measured width" row for the given cells
    (typically the panel's last, largest x), one entry per method column:
    the analytic plan width against the widest intermediate relation the
    execution actually produced. *)

val print_footer : unit -> unit

val set_csv_channel : out_channel option -> unit
(** When set, every {!print_row} also appends machine-readable lines
    [title,x,method,median_seconds,abort_fraction,abort_reasons,rescued_fraction,nonempty_fraction,plan_width,measured_width]
    to the channel (one per cell; a CSV header is written once;
    [abort_reasons] packs the per-reason breakdown as
    [label:fraction|label:fraction]). Intended for regenerating the
    figures with external plotting. *)

val csv_escape : string -> string
(** RFC 4180 field quoting: wraps the field in double quotes (doubling
    embedded quotes) when it contains a comma, a quote, or a CR/LF —
    exposed for the CSV round-trip tests. *)

val set_pool : Parallel.Pool.t option -> unit
(** Install an experiment-wide domain pool (the CLI's [--jobs N]). With a
    pool set, {!run_cell} runs its seeds in parallel (unless the context
    carries telemetry, whose span stack is single-domain) and
    {!map_cells} fans cells across domains; a pool inside [run_cell]'s
    own context takes precedence over the installed one. Aggregates are
    identical either way — only wall-clock changes. *)

val map_cells : ('a -> 'b) -> 'a list -> 'b list
(** [List.map], spread over the installed pool when one is set (and the
    caller is not already on a worker domain). The figure drivers use it
    to evaluate one row's method cells concurrently while keeping the
    printed row order.

    The fan-out is adaptive: the first item runs inline as a probe, and
    the rest go to the pool only when the measured per-item cost times
    the remaining count exceeds the pool's grain read as a work budget
    ([grain] × 100ns) — batches of sub-millisecond cells stay
    sequential, where domain wakeups cost more than they buy. Setting
    [PPR_PAR_GRAIN] rescales the budget (it is the default pool grain;
    see {!Parallel.Pool.create}). The same policy governs the per-seed
    fan-out inside {!run_cell}. *)

val set_recorder : (row -> unit) option -> unit
(** When set, every {!print_row} also passes each cell — with its panel,
    x value and method — to the callback. The benchmark harness uses this
    to accumulate rows for [BENCH_results.json]. *)
