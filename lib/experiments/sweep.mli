(** Shared machinery for the scalability experiments: run a set of
    methods over generated instances, take medians over seeds, and print
    aligned series — one printed block per paper figure. *)

type sample = {
  seconds : float;
  timed_out : bool;
  nonempty : bool option;
  max_arity : int;
}

type cell = {
  median_seconds : float;
      (** median over seeds; timeouts count as [infinity] *)
  timeout_fraction : float;
  nonempty_fraction : float;  (** over the seeds that finished *)
  median_max_arity : int;
}

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val run_cell :
  ?limits_factory:(unit -> Relalg.Limits.t) ->
  seeds:int list ->
  instance:(seed:int -> Conjunctive.Database.t * Conjunctive.Cq.t) ->
  meth:Ppr_core.Driver.meth ->
  unit -> cell
(** One (x-value, method) cell: generate the instance per seed, run the
    method, aggregate. Each seed also seeds the method's own random
    tie-breaking. *)

val print_header : title:string -> columns:string list -> x_label:string -> unit
val print_row : x:string -> cells:cell list -> unit
(** A timeout-majority cell prints as [timeout]; otherwise the median
    time in seconds with the nonempty fraction. *)

val print_footer : unit -> unit

val set_csv_channel : out_channel option -> unit
(** When set, every {!print_row} also appends machine-readable lines
    [title,x,method,median_seconds,timeout_fraction,nonempty_fraction]
    to the channel (one per cell; a CSV header is written once).
    Intended for regenerating the figures with external plotting. *)
