(** One entry per figure of the paper's evaluation (and per extension
    experiment from its conclusion). Every function prints the series the
    figure plots, taking medians over [seeds] instances; [scale] shrinks
    or grows instance sizes relative to the paper's (the default bench
    run uses [scale < 1] so the whole suite finishes in minutes — shapes,
    not absolute numbers, are the reproduction target). *)

val restrict_methods : string -> unit
(** Narrow the method columns of the standard panels. The default column
    set is the paper's four strategies plus ["wcoj"] (the AGM-gated
    generic join). [restrict_methods "wcoj"] keeps exactly that set —
    the four baselines and the generic join, six printed columns with the
    x label — while a baseline name (e.g. ["bucket-elim"]) drops the
    extension columns and reproduces the paper's original four-column
    panels. Figures with custom column sets (2, minibucket, yannakakis,
    orders, weighted, symbolic, hybrid, resilience) are unaffected.
    @raise Invalid_argument on an unknown method name. *)

val figure2 : scale:float -> seeds:int -> unit
(** Compile-time density scaling (naive DP, naive GEQO, straightforward)
    on 3-SAT with 5 variables. *)

val figure3 : scale:float -> seeds:int -> unit
(** 3-COLOR density scaling at fixed order; Boolean and 20%-free panels. *)

val figure4 : scale:float -> seeds:int -> unit
(** 3-COLOR order scaling at density 3.0. *)

val figure5 : scale:float -> seeds:int -> unit
(** 3-COLOR order scaling at density 6.0. *)

val figure6 : scale:float -> seeds:int -> unit
(** Augmented-path order scaling. *)

val figure7 : scale:float -> seeds:int -> unit
(** Ladder order scaling. *)

val figure8 : scale:float -> seeds:int -> unit
(** Augmented-ladder order scaling. *)

val figure9 : scale:float -> seeds:int -> unit
(** Augmented-circular-ladder order scaling. *)

val figure_sat : scale:float -> seeds:int -> unit
(** Section 7's claim: 3-SAT and 2-SAT behave like 3-COLOR. *)

val figure_minibucket : scale:float -> seeds:int -> unit
(** Extension: mini-bucket i-bound ablation against exact bucket
    elimination (time and answer agreement). *)

val figure_yannakakis : scale:float -> seeds:int -> unit
(** Extension: Yannakakis on acyclic instances versus bucket elimination
    and early projection. *)

val figure_orders : scale:float -> seeds:int -> unit
(** Ablation: variable-order heuristics for bucket elimination (MCS,
    min-degree, min-fill, random). *)

val figure_weighted : scale:float -> seeds:int -> unit
(** Ablation: weighted vs unweighted elimination orders on a
    mixed-domain workload. *)

val figure_relsize : scale:float -> seeds:int -> unit
(** §7 future work: scalability in the base-relation size (k-COLOR with
    growing k). *)

val figure_symbolic : scale:float -> seeds:int -> unit
(** Extension: the BDD engine vs the relational engine on one schedule. *)

val figure_hybrid : scale:float -> seeds:int -> unit
(** Ablation: the cost-scored hybrid portfolio against fixed
    strategies on a mixed-domain workload. *)

val figure_resilience : scale:float -> seeds:int -> unit
(** Robustness extension: typed abort reasons under tight budgets, and
    the fraction of runs the {!Supervise} degradation ladder rescues. *)

val all : scale:float -> seeds:int -> unit

val by_name : string -> (scale:float -> seeds:int -> unit) option
(** Look up a figure printer by its bench name ("2".."9", "sat",
    "minibucket", "yannakakis", "all"). *)

val names : string list
