module Driver = Ppr_core.Driver
module Encode = Conjunctive.Encode
module Generators = Graphlib.Generators
module Rng = Graphlib.Rng

let scaled scale n = max 3 (int_of_float (Float.round (scale *. float_of_int n)))

let seed_list seeds = List.init (max 1 seeds) (fun i -> 1000 + i)

(* Eager, not lazy: worker domains read it concurrently and forcing a
   lazy from two domains at once raises [RacyLazy]. It is a handful of
   tuples, so paying for it at startup costs nothing. *)
let shared_db = Encode.coloring_database ()

(* The stand-in for the paper's wall-clock timeouts: a run is cut off once
   an intermediate relation (or the whole run) materializes this many
   tuples. Tight enough that hopeless cells fail fast; the winning
   methods never come near it at bench scales. *)
let limits_factory () =
  Relalg.Limits.create ~max_tuples:300_000 ~max_total:3_000_000 ()

(* A fresh per-run context carrying only those limits. *)
let limited_ctx () = Relalg.Ctx.create ~limits:(limits_factory ()) ()

let base_methods =
  [
    ("straightfwd", Driver.Straightforward);
    ("early-proj", Driver.Early_projection);
    ("reordering", Driver.Reorder);
    ("bucket-elim", Driver.Bucket_elimination);
  ]

let extra_methods = [ ("wcoj", Driver.Wcoj); ("ghd", Driver.Ghd) ]

(* The panels compare the paper's four execution strategies plus the
   AGM-gated generic join as a sixth column and the gated GHD-Yannakakis
   as a seventh (after the x label); [--method] on the CLI narrows the
   extras through {!restrict_methods}. *)
let active_methods = ref (base_methods @ extra_methods)
let paper_methods () = !active_methods

let restrict_methods name =
  match List.assoc_opt name extra_methods with
  | Some meth -> active_methods := base_methods @ [ (name, meth) ]
  | None ->
    if List.mem_assoc name base_methods then active_methods := base_methods
    else
      invalid_arg
        (Printf.sprintf "Figures.restrict_methods: unknown method %S" name)

(* A figure panel: one table of method columns over a swept parameter.
   After the sweep, the last (hardest) row's cells also print the
   predicted-vs-measured width comparison per method. *)
let panel ~title ~x_label ~xs ~seeds ~instance =
  let paper_methods = paper_methods () in
  Sweep.print_header ~title ~columns:(List.map fst paper_methods) ~x_label;
  let last_cells =
    (* Each row's method cells evaluate concurrently (when a pool is
       installed); the row still prints as a unit, in sweep order. *)
    List.fold_left
      (fun _ x ->
        let cells =
          Sweep.map_cells
            (fun (_, meth) ->
              Sweep.run_cell ~limits_factory ~seeds:(seed_list seeds)
                ~instance:(instance x) ~meth ())
            paper_methods
        in
        Sweep.print_row ~x:(Printf.sprintf "%g" x) ~cells;
        Some cells)
      None xs
  in
  (match last_cells with
  | Some cells -> Sweep.print_width_summary ~cells
  | None -> ());
  Sweep.print_footer ()


let random_coloring ~mode ~n ~density ~seed =
  let rng = Rng.make seed in
  (* Clamp to the simple-graph maximum: scaled-down orders can push the
     paper's densities past n*(n-1)/2; at least one edge is needed by the
     encoder. *)
  let m =
    let wanted = int_of_float (Float.round (density *. float_of_int n)) in
    max 1 (min wanted (n * (n - 1) / 2))
  in
  let g = Generators.random ~rng ~n ~m in
  let query_rng = Rng.split rng in
  (shared_db, Encode.coloring_query_of_graph ~mode ~rng:query_rng g)

(* ------------------------------------------------------------------ *)
(* Figure 2: compile time.                                             *)

let dp_atom_limit = 20

let figure2 ~scale ~seeds =
  ignore scale;
  let num_vars = 5 in
  let densities = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ] in
  Printf.printf
    "\n== Figure 2: compile time, naive vs straightforward (3-SAT, %d variables) ==\n"
    num_vars;
  Printf.printf "%-10s%16s%16s%16s%16s%16s\n" "density" "naive-dp" "naive-geqo"
    "straightfwd" "exec(geqo)" "geqo/sf cost";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun density ->
      let m = int_of_float (density *. float_of_int num_vars) in
      let per_seed seed =
        let rng = Rng.make seed in
        let cnf = Conjunctive.Cnf.random_ksat ~rng ~k:3 ~num_vars ~num_clauses:m in
        let db = Encode.sat_database cnf in
        let cq = Encode.sat_query ~mode:Encode.Boolean cnf in
        let time f =
          let t0 = Unix.gettimeofday () in
          let v = f () in
          (Unix.gettimeofday () -. t0, v)
        in
        let dp =
          if m > dp_atom_limit then None
          else Some (fst (time (fun () -> Ppr_core.Naive.compile ~search:Ppr_core.Naive.Dp db cq)))
        in
        let genetic_search =
          Ppr_core.Naive.Genetic { Ppr_core.Naive.default_genetic with seed }
        in
        let geqo_time, geqo_plan =
          time (fun () -> Ppr_core.Naive.compile ~search:genetic_search db cq)
        in
        let sf = fst (time (fun () -> Ppr_core.Straightforward.compile cq)) in
        let exec_time =
          fst
            (time (fun () ->
                 try
                   ignore
                     (Ppr_core.Exec.run ~ctx:(limited_ctx ()) db geqo_plan)
                 with Relalg.Limits.Abort _ -> ()))
        in
        (* The paper: the genetic plan "is apparently no better than the
           straightforward order" — compare estimated costs directly. *)
        let env = Ppr_core.Cost.environment db cq in
        let quality =
          Ppr_core.Cost.plan_cost env geqo_plan
          /. Float.max 1.0
               (Ppr_core.Cost.plan_cost env (Ppr_core.Straightforward.compile cq))
        in
        (dp, geqo_time, sf, exec_time, quality)
      in
      let results = List.map per_seed (seed_list seeds) in
      let med f = Sweep.median (List.map f results) in
      let dp_cell =
        let known = List.filter_map (fun (dp, _, _, _, _) -> dp) results in
        if known = [] then "timeout"
        else Printf.sprintf "%.4fs" (Sweep.median known)
      in
      Printf.printf "%-10g%16s%15.4fs%15.6fs%15.4fs%15.2fx\n" density dp_cell
        (med (fun (_, g, _, _, _) -> g))
        (med (fun (_, _, s, _, _) -> s))
        (med (fun (_, _, _, e, _) -> e))
        (med (fun (_, _, _, _, q) -> q)))
    densities;
  Printf.printf
    "(naive-dp 'timeout': beyond the %d-join exhaustive-search cutoff, as \
     PostgreSQL's planner degrades past geqo_threshold)\n%!"
    dp_atom_limit

(* ------------------------------------------------------------------ *)
(* Figures 3-5: random 3-COLOR.                                        *)

let both_modes ~figure ~x_label ~xs ~seeds ~instance_of =
  List.iter
    (fun (mode_name, mode) ->
      panel
        ~title:(Printf.sprintf "%s — %s" figure mode_name)
        ~x_label ~xs ~seeds
        ~instance:(fun x ~seed -> instance_of ~mode ~x ~seed))
    [ ("Boolean", Encode.Boolean); ("non-Boolean (20% free)", Encode.Fraction 0.2) ]

let figure3 ~scale ~seeds =
  let n = scaled scale 20 in
  both_modes
    ~figure:(Printf.sprintf "Figure 3: 3-COLOR density scaling, order %d" n)
    ~x_label:"density"
    ~xs:[ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 ]
    ~seeds
    ~instance_of:(fun ~mode ~x ~seed -> random_coloring ~mode ~n ~density:x ~seed)

let order_scaling ~figure ~density ~orders ~seeds =
  both_modes ~figure ~x_label:"order" ~xs:(List.map float_of_int orders) ~seeds
    ~instance_of:(fun ~mode ~x ~seed ->
      random_coloring ~mode ~n:(int_of_float x) ~density ~seed)

let figure4 ~scale ~seeds =
  let orders = List.map (scaled scale) [ 10; 15; 20; 25; 30; 35 ] in
  order_scaling
    ~figure:"Figure 4: 3-COLOR order scaling, density 3.0"
    ~density:3.0 ~orders ~seeds

let figure5 ~scale ~seeds =
  let orders = List.map (scaled scale) [ 15; 18; 21; 24; 27; 30 ] in
  order_scaling
    ~figure:"Figure 5: 3-COLOR order scaling, density 6.0"
    ~density:6.0 ~orders ~seeds

(* ------------------------------------------------------------------ *)
(* Figures 6-9: structured families.                                   *)

let structured ~figure ~family ~orders ~seeds =
  let orders = List.sort_uniq Stdlib.compare orders in
  both_modes ~figure ~x_label:"order" ~xs:(List.map float_of_int orders) ~seeds
    ~instance_of:(fun ~mode ~x ~seed ->
      let g = family (int_of_float x) in
      let rng = Rng.make seed in
      (shared_db, Encode.coloring_query_of_graph ~mode ~rng g))

(* The paper scales structured orders 5..50, but its own slow methods
   time out around order 7 and the non-Boolean panels struggle past 20;
   the per-family ranges below keep every interesting crossover while
   letting hopeless cells fail fast. *)
let figure6 ~scale ~seeds =
  structured ~figure:"Figure 6: augmented path queries"
    ~family:Generators.augmented_path
    ~orders:(List.map (scaled scale) [ 5; 10; 20; 30; 40; 50 ])
    ~seeds

let figure7 ~scale ~seeds =
  structured ~figure:"Figure 7: ladder queries" ~family:Generators.ladder
    ~orders:(List.map (scaled scale) [ 5; 10; 15; 20; 25; 30 ])
    ~seeds

let figure8 ~scale ~seeds =
  structured ~figure:"Figure 8: augmented ladder queries"
    ~family:Generators.augmented_ladder
    ~orders:(List.map (scaled scale) [ 3; 5; 7; 10; 14; 18 ])
    ~seeds

let figure9 ~scale ~seeds =
  structured ~figure:"Figure 9: augmented circular ladder queries"
    ~family:Generators.augmented_circular_ladder
    ~orders:(List.map (scaled scale) [ 3; 5; 7; 10; 14; 18 ])
    ~seeds

(* ------------------------------------------------------------------ *)
(* Section 7 extensions.                                               *)

let sat_instance ~k ~mode ~num_vars ~density ~seed =
  let rng = Rng.make seed in
  let m = max 1 (int_of_float (density *. float_of_int num_vars)) in
  let cnf = Conjunctive.Cnf.random_ksat ~rng ~k ~num_vars ~num_clauses:m in
  let db = Encode.sat_database cnf in
  (db, Encode.sat_query ~mode ~rng:(Rng.split rng) cnf)

let figure_sat ~scale ~seeds =
  List.iter
    (fun k ->
      let n = scaled scale 20 in
      panel
        ~title:(Printf.sprintf "Section 7: %d-SAT density scaling, %d variables (Boolean)" k n)
        ~x_label:"density"
        ~xs:[ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 ]
        ~seeds
        ~instance:(fun density ~seed ->
          sat_instance ~k ~mode:Encode.Boolean ~num_vars:n ~density ~seed))
    [ 3; 2 ]

let figure_minibucket ~scale ~seeds =
  let n = scaled scale 16 in
  let density = 4.0 in
  Printf.printf
    "\n== Extension: mini-bucket i-bound ablation (3-COLOR, order %d, density %g) ==\n"
    n density;
  Printf.printf "%-10s%16s%16s\n" "i-bound" "median time" "agreement";
  Printf.printf "%s\n" (String.make 42 '-');
  let instances =
    List.map
      (fun seed ->
        let db, cq =
          random_coloring ~mode:Encode.Boolean ~n ~density ~seed
        in
        let truth =
          Driver.nonempty
            (Driver.run ~ctx:(limited_ctx ()) Driver.Bucket_elimination db cq)
        in
        (db, cq, truth))
      (seed_list seeds)
  in
  List.iter
    (fun i_bound ->
      let samples =
        List.map
          (fun (db, cq, truth) ->
            let t0 = Unix.gettimeofday () in
            let verdict =
              try
                match
                  Ppr_core.Minibucket.evaluate ~ctx:(limited_ctx ())
                    ~i_bound db cq
                with
                | Ppr_core.Minibucket.Definitely_empty -> Some false
                | Ppr_core.Minibucket.Maybe_nonempty _ -> Some true
              with Relalg.Limits.Abort _ -> None
            in
            let dt = Unix.gettimeofday () -. t0 in
            let agrees =
              match (verdict, truth) with
              | Some v, Some t -> Some (v = t)
              | _ -> None
            in
            (dt, agrees))
          instances
      in
      let times = List.map fst samples in
      let agreements = List.filter_map snd samples in
      let agree_frac =
        if agreements = [] then 0.0
        else
          float_of_int (List.length (List.filter Fun.id agreements))
          /. float_of_int (List.length agreements)
      in
      Printf.printf "%-10d%15.4fs%15.0f%%\n" i_bound (Sweep.median times)
        (100. *. agree_frac))
    [ 2; 3; 4; 6; 8; 10 ];
  Printf.printf
    "(mini-buckets upper-bound the answer: 'nonempty' may be spurious at low \
     i-bounds; agreement should rise to 100%% as the bound grows)\n%!"

let figure_yannakakis ~scale ~seeds =
  let orders = List.map (scaled scale) [ 5; 10; 20; 40 ] in
  Printf.printf
    "\n== Extension: Yannakakis vs bucket elimination on acyclic (augmented path) queries ==\n";
  Printf.printf "%-10s%16s%16s%16s\n" "order" "yannakakis" "bucket-elim" "early-proj";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun order ->
      let time_method meth =
        Sweep.run_cell ~limits_factory ~seeds:(seed_list seeds)
          ~instance:(fun ~seed ->
            let rng = Rng.make seed in
            ( shared_db,
              Encode.coloring_query_of_graph ~mode:Encode.Boolean ~rng
                (Generators.augmented_path order) ))
          ~meth ()
      in
      let yk_times =
        List.map
          (fun seed ->
            let rng = Rng.make seed in
            let db = shared_db in
            let cq =
              Encode.coloring_query_of_graph ~mode:Encode.Boolean ~rng
                (Generators.augmented_path order)
            in
            let t0 = Unix.gettimeofday () in
            (match
               Hypergraphs.Yannakakis.evaluate ~ctx:(limited_ctx ()) db cq
             with
            | Some _ -> ()
            | None -> failwith "augmented path should be acyclic");
            Unix.gettimeofday () -. t0)
          (seed_list seeds)
      in
      let be = time_method Driver.Bucket_elimination in
      let ep = time_method Driver.Early_projection in
      let show (c : Sweep.cell) =
        if c.Sweep.abort_fraction > 0.5 then "timeout"
        else Printf.sprintf "%.4fs" c.Sweep.median_seconds
      in
      Printf.printf "%-10d%15.4fs%16s%16s\n" order (Sweep.median yk_times)
        (show be) (show ep))
    orders;
  print_newline ()

(* Ablation: which variable-order heuristic should bucket elimination
   use? The paper follows [7,29,30] in choosing MCS; min-fill is the
   modern default in the CSP literature. *)
let figure_orders ~scale ~seeds =
  let n = scaled scale 18 in
  let density = 2.5 in
  Printf.printf
    "\n== Ablation: bucket-elimination variable orders (3-COLOR, order %d, density %g) ==\n"
    n density;
  Printf.printf "%-12s%16s%16s\n" "order-heur" "median time" "induced-width";
  Printf.printf "%s\n" (String.make 44 '-');
  let heuristics =
    [
      ("mcs", fun _seed cq -> Ppr_core.Bucket.variable_order cq);
      ( "min-degree",
        fun _seed cq ->
          let jg = Conjunctive.Joingraph.build cq in
          Conjunctive.Joingraph.variable_order_of jg
            (Graphlib.Order.min_degree jg.Conjunctive.Joingraph.graph) );
      ( "min-fill",
        fun _seed cq ->
          let jg = Conjunctive.Joingraph.build cq in
          Conjunctive.Joingraph.variable_order_of jg
            (Graphlib.Order.min_fill jg.Conjunctive.Joingraph.graph) );
      ( "random",
        fun seed cq ->
          let jg = Conjunctive.Joingraph.build cq in
          Conjunctive.Joingraph.variable_order_of jg
            (Graphlib.Order.random ~rng:(Rng.make (seed + 5))
               jg.Conjunctive.Joingraph.graph) );
    ]
  in
  List.iter
    (fun (name, order_of) ->
      let samples =
        List.map
          (fun seed ->
            let db, cq = random_coloring ~mode:Encode.Boolean ~n ~density ~seed in
            let order = order_of seed cq in
            let width = Ppr_core.Bucket.induced_width cq order in
            let t0 = Unix.gettimeofday () in
            (try
               ignore
                 (Ppr_core.Exec.run ~ctx:(limited_ctx ()) db
                    (Ppr_core.Bucket.compile ~order cq))
             with Relalg.Limits.Abort _ -> ());
            (Unix.gettimeofday () -. t0, float_of_int width))
          (seed_list seeds)
      in
      Printf.printf "%-12s%15.4fs%16.1f\n" name
        (Sweep.median (List.map fst samples))
        (Sweep.median (List.map snd samples)))
    heuristics;
  Printf.printf
    "(the paper's MCS choice should track min-fill closely and beat random \
     decisively)\n%!"

(* Ablation: weighted attributes (§7 future work) on a mixed-domain
   workload — a fraction of the constraints range over 9 colors instead
   of 3, so counting columns and weighing them disagree. *)
let figure_weighted ~scale ~seeds =
  let n = scaled scale 16 in
  let density = 2.0 in
  Printf.printf
    "\n== Ablation: weighted vs unweighted orders (mixed 3/9-color, order %d, density %g) ==\n"
    n density;
  Printf.printf "%-12s%16s%16s\n" "order" "median time" "max-card";
  Printf.printf "%s\n" (String.make 44 '-');
  let mixed_db =
    let db = Conjunctive.Database.create () in
    let pairs k =
      let rows = ref [] in
      for a = 1 to k do
        for b = 1 to k do
          if a <> b then rows := [ a; b ] :: !rows
        done
      done;
      Relalg.Relation.of_list (Relalg.Schema.of_list [ 0; 1 ]) !rows
    in
    Conjunctive.Database.add db "edge3" (pairs 3);
    Conjunctive.Database.add db "edge9" (pairs 9);
    db
  in
  let instance seed =
    let rng = Rng.make seed in
    let m = int_of_float (density *. float_of_int n) in
    let g = Generators.random ~rng ~n ~m in
    let atoms =
      List.map
        (fun (u, v) ->
          let rel = if Rng.int rng 4 = 0 then "edge9" else "edge3" in
          { Conjunctive.Cq.rel; vars = [ u; v ] })
        (Graphlib.Graph.edges g)
    in
    (mixed_db, Conjunctive.Cq.make ~atoms ~free:[])
  in
  let run_with order_of =
    List.map
      (fun seed ->
        let db, cq = instance seed in
        let order = order_of db cq in
        let stats = Relalg.Stats.create () in
        let t0 = Unix.gettimeofday () in
        (try
           ignore
             (Ppr_core.Exec.run ~ctx:(Relalg.Ctx.create ~stats ~limits:(limits_factory ()) ()) db
                (Ppr_core.Bucket.compile ~order cq))
         with Relalg.Limits.Abort _ -> ());
        ( Unix.gettimeofday () -. t0,
          float_of_int (Relalg.Stats.max_cardinality stats) ))
      (seed_list seeds)
  in
  List.iter
    (fun (name, order_of) ->
      let samples = run_with order_of in
      Printf.printf "%-12s%15.4fs%16.0f\n" name
        (Sweep.median (List.map fst samples))
        (Sweep.median (List.map snd samples)))
    [
      ("mcs", fun _db cq -> Ppr_core.Bucket.variable_order cq);
      ( "weighted",
        fun db cq ->
          let weight = Ppr_core.Weighted.weights_from_database db cq in
          Ppr_core.Weighted.variable_order ~weight cq );
    ];
  Printf.printf
    "(weighted orders should cut the largest intermediate relation on \
     mixed-width schemas)\n%!"

(* The symbolic (BDD) engine against the relational one — the lineage
   the paper comes from ([29,30]; §7's quantification scheduling). Both
   run the identical bucket-elimination schedule; what differs is the
   data structure carrying each bucket's result. *)
let figure_symbolic ~scale ~seeds =
  let density = 2.5 in
  let orders =
    List.sort_uniq Stdlib.compare (List.map (scaled scale) [ 8; 12; 16; 20; 24 ])
  in
  Printf.printf
    "\n== Extension: symbolic (BDD) vs relational bucket elimination (3-COLOR, density %g) ==\n"
    density;
  Printf.printf "%-10s%16s%16s%16s\n" "order" "relational" "symbolic" "agree";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun n ->
      let samples =
        List.map
          (fun seed ->
            let db, cq = random_coloring ~mode:Encode.Boolean ~n ~density ~seed in
            let order = Ppr_core.Bucket.variable_order cq in
            let t0 = Unix.gettimeofday () in
            let relational =
              try
                Some
                  (Ppr_core.Exec.nonempty ~ctx:(limited_ctx ()) db
                     (Ppr_core.Bucket.compile ~order cq))
              with Relalg.Limits.Abort _ -> None
            in
            let t1 = Unix.gettimeofday () in
            let symbolic = Ppr_core.Symbolic.satisfiable ~order db cq in
            let t2 = Unix.gettimeofday () in
            let agree =
              match relational with Some r -> r = symbolic | None -> true
            in
            (t1 -. t0, t2 -. t1, agree))
          (seed_list seeds)
      in
      let med f = Sweep.median (List.map f samples) in
      Printf.printf "%-10d%15.4fs%15.4fs%16s\n" n
        (med (fun (r, _, _) -> r))
        (med (fun (_, s, _) -> s))
        (if List.for_all (fun (_, _, a) -> a) samples then "yes" else "NO"))
    orders;
  Printf.printf
    "(identical elimination schedules; the BDD pays hash-consing overhead \
     but compresses wide intermediate results)\n%!"

(* Ablation: the hybrid portfolio against its strongest member. On
   uniform 3-COLOR the MCS bucket plan usually wins outright, so the
   interesting cases are the mixed-domain instances where the weighted
   order matters — the hybrid should track the best column everywhere. *)
let figure_hybrid ~scale ~seeds =
  let n = scaled scale 14 in
  Printf.printf
    "\n== Ablation: hybrid portfolio vs fixed strategies (mixed 3/9-color, order %d) ==\n"
    n;
  Printf.printf "%-10s%16s%16s%16s\n" "density" "bucket-elim" "early-proj" "hybrid";
  Printf.printf "%s\n" (String.make 58 '-');
  let mixed_db =
    let db = Conjunctive.Database.create () in
    let pairs k =
      let rows = ref [] in
      for a = 1 to k do
        for b = 1 to k do
          if a <> b then rows := [ a; b ] :: !rows
        done
      done;
      Relalg.Relation.of_list (Relalg.Schema.of_list [ 0; 1 ]) !rows
    in
    Conjunctive.Database.add db "edge3" (pairs 3);
    Conjunctive.Database.add db "edge9" (pairs 9);
    db
  in
  let instance density ~seed =
    let rng = Rng.make seed in
    let m =
      max 1 (min (int_of_float (density *. float_of_int n)) (n * (n - 1) / 2))
    in
    let g = Generators.random ~rng ~n ~m in
    let atoms =
      List.map
        (fun (u, v) ->
          let rel = if Rng.int rng 4 = 0 then "edge9" else "edge3" in
          { Conjunctive.Cq.rel; vars = [ u; v ] })
        (Graphlib.Graph.edges g)
    in
    (mixed_db, Conjunctive.Cq.make ~atoms ~free:[])
  in
  List.iter
    (fun density ->
      let cells =
        Sweep.map_cells
          (fun meth ->
            Sweep.run_cell ~limits_factory ~seeds:(seed_list seeds)
              ~instance:(instance density) ~meth ())
          [ Driver.Bucket_elimination; Driver.Early_projection; Driver.Hybrid ]
      in
      Printf.printf "%-10g" density;
      List.iter
        (fun (c : Sweep.cell) ->
          Printf.printf "%16s"
            (if c.Sweep.abort_fraction > 0.5 then "timeout"
             else Printf.sprintf "%.4fs" c.Sweep.median_seconds))
        cells;
      print_newline ())
    [ 1.0; 1.5; 2.0; 2.5; 3.0 ];
  Printf.printf
    "(the hybrid picks per-instance among MCS/min-fill/weighted/annealed \
     bucket orders and the greedy plans by estimated cost)\n%!"

(* §7 future work #1: "study scalability with respect to relation size".
   Fix the query shape and scale the color count k — the edge relation
   grows as k(k-1) while the structure (and so each method's width)
   stays put. *)
let figure_relsize ~scale ~seeds =
  let n = scaled scale 12 in
  let density = 2.0 in
  let paper_methods = paper_methods () in
  Printf.printf
    "\n== Section 7: relation-size scaling (k-COLOR, order %d, density %g) ==\n"
    n density;
  Sweep.print_header
    ~title:"k-COLOR: edge relation of k(k-1) tuples"
    ~columns:(List.map fst paper_methods) ~x_label:"k";
  List.iter
    (fun k ->
      let db = Encode.coloring_database ~k () in
      let cells =
        Sweep.map_cells
          (fun (_, meth) ->
            Sweep.run_cell ~limits_factory ~seeds:(seed_list seeds)
              ~instance:(fun ~seed ->
                let rng = Rng.make seed in
                let m =
                  max 1
                    (min
                       (int_of_float (density *. float_of_int n))
                       (n * (n - 1) / 2))
                in
                (db, Encode.coloring_query_of_graph ~mode:Encode.Boolean
                       ~rng (Generators.random ~rng ~n ~m)))
              ~meth ())
          paper_methods
      in
      Sweep.print_row ~x:(string_of_int k) ~cells)
    [ 3; 5; 8; 12; 20; 32 ];
  Sweep.print_footer ()

(* Robustness extension: under a deliberately tight budget, the wide
   methods abort; the supervisor's degradation ladder turns those aborts
   into answers. Cells show the typed abort reason, or the median time
   with the fraction of seeds that needed a rescue. *)
let figure_resilience ~scale ~seeds =
  let n = scaled scale 16 in
  let cap_card = 300 and cap_total = 100_000 in
  let tight () =
    Relalg.Limits.create ~max_tuples:cap_card ~max_total:cap_total ()
  in
  let budget =
    Supervise.Budget.(
      with_max_cardinality cap_card (with_max_total cap_total default))
  in
  let columns = [ "straightfwd"; "bucket-elim"; "bucket+ladder" ] in
  Printf.printf
    "\n== Supervised execution: typed aborts and ladder rescues (order %d) ==\n"
    n;
  Printf.printf "%-10s%18s%18s%18s\n" "density" (List.nth columns 0)
    (List.nth columns 1) (List.nth columns 2);
  Printf.printf "%s\n" (String.make 64 '-');
  let fmt_cell (c : Sweep.cell) =
    if c.Sweep.abort_fraction > 0.5 then
      match c.Sweep.abort_breakdown with
      | (label, _) :: _ -> "abort:" ^ label
      | [] -> "timeout"
    else if c.Sweep.rescued_fraction > 0.0 then
      Printf.sprintf "%.3fs r%.0f%%" c.Sweep.median_seconds
        (100. *. c.Sweep.rescued_fraction)
    else Printf.sprintf "%.4fs" c.Sweep.median_seconds
  in
  List.iter
    (fun density ->
      let instance ~seed =
        let rng = Rng.make seed in
        let m =
          max 1
            (min
               (int_of_float (density *. float_of_int n))
               (n * (n - 1) / 2))
        in
        ( shared_db,
          Encode.coloring_query_of_graph ~mode:Encode.Boolean ~rng
            (Generators.random ~rng ~n ~m) )
      in
      let unsup meth =
        Sweep.run_cell ~limits_factory:tight ~seeds:(seed_list seeds)
          ~instance ~meth ()
      in
      let sup =
        Sweep.run_cell ~budget
          ~ladder:(Supervise.default_ladder Driver.Bucket_elimination)
          ~seeds:(seed_list seeds) ~instance ~meth:Driver.Bucket_elimination ()
      in
      Printf.printf "%-10g%18s%18s%18s\n" density
        (fmt_cell (unsup Driver.Straightforward))
        (fmt_cell (unsup Driver.Bucket_elimination))
        (fmt_cell sup))
    [ 2.0; 3.0; 4.0 ];
  Printf.printf
    "(rNN%% = seeds rescued by retrying down minibucket -> reordering -> \
     straightforward; mini-bucket rescues are upper bounds)\n%!"

let all ~scale ~seeds =
  figure2 ~scale ~seeds;
  figure3 ~scale ~seeds;
  figure4 ~scale ~seeds;
  figure5 ~scale ~seeds;
  figure6 ~scale ~seeds;
  figure7 ~scale ~seeds;
  figure8 ~scale ~seeds;
  figure9 ~scale ~seeds;
  figure_sat ~scale ~seeds;
  figure_minibucket ~scale ~seeds;
  figure_yannakakis ~scale ~seeds;
  figure_orders ~scale ~seeds;
  figure_weighted ~scale ~seeds;
  figure_relsize ~scale ~seeds;
  figure_symbolic ~scale ~seeds;
  figure_hybrid ~scale ~seeds;
  figure_resilience ~scale ~seeds

let table =
  [
    ("2", figure2);
    ("3", figure3);
    ("4", figure4);
    ("5", figure5);
    ("6", figure6);
    ("7", figure7);
    ("8", figure8);
    ("9", figure9);
    ("sat", figure_sat);
    ("minibucket", figure_minibucket);
    ("yannakakis", figure_yannakakis);
    ("orders", figure_orders);
    ("weighted", figure_weighted);
    ("relsize", figure_relsize);
    ("symbolic", figure_symbolic);
    ("hybrid", figure_hybrid);
    ("resilience", figure_resilience);
    ("all", all);
  ]

let by_name name = List.assoc_opt name table
let names = List.map fst table
