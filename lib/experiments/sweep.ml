type sample = {
  seconds : float;
  timed_out : bool;
  nonempty : bool option;
  max_arity : int;
}

type cell = {
  median_seconds : float;
  timeout_fraction : float;
  nonempty_fraction : float;
  median_max_arity : int;
}

let median values =
  match List.sort Stdlib.compare values with
  | [] -> invalid_arg "Sweep.median: empty"
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let int_median values =
  int_of_float (median (List.map float_of_int values))

let aggregate samples =
  let n = List.length samples in
  let timeouts = List.filter (fun s -> s.timed_out) samples in
  let finished = List.filter (fun s -> not s.timed_out) samples in
  let nonempty_count =
    List.length (List.filter (fun s -> s.nonempty = Some true) finished)
  in
  {
    median_seconds =
      median
        (List.map (fun s -> if s.timed_out then infinity else s.seconds) samples);
    timeout_fraction = float_of_int (List.length timeouts) /. float_of_int n;
    nonempty_fraction =
      (if finished = [] then 0.0
       else float_of_int nonempty_count /. float_of_int (List.length finished));
    median_max_arity = int_median (List.map (fun s -> s.max_arity) samples);
  }

let run_cell ?(limits_factory = fun () -> Relalg.Limits.create ()) ~seeds
    ~instance ~meth () =
  let run_one seed =
    let db, cq = instance ~seed in
    let rng = Graphlib.Rng.make (seed * 7919) in
    let outcome =
      Ppr_core.Driver.run ~rng ~limits:(limits_factory ()) meth db cq
    in
    {
      seconds =
        outcome.Ppr_core.Driver.compile_seconds
        +. outcome.Ppr_core.Driver.exec_seconds;
      timed_out = outcome.Ppr_core.Driver.timed_out;
      nonempty = outcome.Ppr_core.Driver.nonempty;
      max_arity = outcome.Ppr_core.Driver.max_arity;
    }
  in
  aggregate (List.map run_one seeds)

let column_width = 16

(* Optional machine-readable sink; the header/columns of the panel being
   printed are remembered so rows can be attributed. *)
let csv_channel = ref None
let csv_header_written = ref false
let current_panel = ref ("", ([] : string list))

let set_csv_channel ch =
  csv_channel := ch;
  csv_header_written := false

let csv_escape s =
  if String.contains s ',' || String.contains s '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_row ~x cells =
  match !csv_channel with
  | None -> ()
  | Some oc ->
    if not !csv_header_written then begin
      output_string oc
        "panel,x,method,median_seconds,timeout_fraction,nonempty_fraction\n";
      csv_header_written := true
    end;
    let title, columns = !current_panel in
    List.iter2
      (fun column cell ->
        Printf.fprintf oc "%s,%s,%s,%s,%.3f,%.3f\n" (csv_escape title)
          (csv_escape x) (csv_escape column)
          (if cell.median_seconds = infinity then "timeout"
           else Printf.sprintf "%.6f" cell.median_seconds)
          cell.timeout_fraction cell.nonempty_fraction)
      columns cells

let print_header ~title ~columns ~x_label =
  current_panel := (title, columns);
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-10s" x_label;
  List.iter (fun c -> Printf.printf "%*s" column_width c) columns;
  print_newline ();
  Printf.printf "%s\n"
    (String.make (10 + (column_width * List.length columns)) '-')

let format_cell cell =
  if cell.timeout_fraction > 0.5 then "timeout"
  else Printf.sprintf "%.4fs/%.0f%%" cell.median_seconds (100. *. cell.nonempty_fraction)

let print_row ~x ~cells =
  Printf.printf "%-10s" x;
  List.iter (fun c -> Printf.printf "%*s" column_width (format_cell c)) cells;
  print_newline ();
  csv_row ~x cells

let print_footer () =
  Printf.printf "(cells: median seconds / %% of finished seeds nonempty; 'timeout' = resource guard tripped)\n%!"
