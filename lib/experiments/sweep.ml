type sample = {
  seconds : float;
  status : Ppr_core.Driver.status;  (* of the final attempt *)
  rescued : bool;
  nonempty : bool option;
  plan_width : int;
  max_arity : int;
}

type cell = {
  median_seconds : float;
  abort_fraction : float;
  abort_breakdown : (string * float) list;
  rescued_fraction : float;
  nonempty_fraction : float;
  median_plan_width : int;
  median_max_arity : int;
}

type row = {
  row_panel : string;
  row_x : string;
  row_method : string;
  row_cell : cell;
}

let aborted s =
  match s.status with
  | Ppr_core.Driver.Completed -> false
  | Ppr_core.Driver.Aborted _ -> true

let median values =
  match List.sort Stdlib.compare values with
  | [] -> invalid_arg "Sweep.median: empty"
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let int_median values =
  int_of_float (median (List.map float_of_int values))

let aggregate samples =
  let n = List.length samples in
  let aborts = List.filter aborted samples in
  let finished = List.filter (fun s -> not (aborted s)) samples in
  let nonempty_count =
    List.length (List.filter (fun s -> s.nonempty = Some true) finished)
  in
  let breakdown =
    (* Fraction of all samples whose final attempt died for each reason,
       sorted by label for stable output. *)
    let tally = Hashtbl.create 7 in
    List.iter
      (fun s ->
        match s.status with
        | Ppr_core.Driver.Completed -> ()
        | Ppr_core.Driver.Aborted a ->
          let label = Relalg.Limits.reason_label a.Ppr_core.Driver.reason in
          Hashtbl.replace tally label
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally label)))
      samples;
    Hashtbl.fold
      (fun label count acc ->
        (label, float_of_int count /. float_of_int n) :: acc)
      tally []
    |> List.sort Stdlib.compare
  in
  {
    median_seconds =
      median
        (List.map (fun s -> if aborted s then infinity else s.seconds) samples);
    abort_fraction = float_of_int (List.length aborts) /. float_of_int n;
    abort_breakdown = breakdown;
    rescued_fraction =
      float_of_int (List.length (List.filter (fun s -> s.rescued) samples))
      /. float_of_int n;
    nonempty_fraction =
      (if finished = [] then 0.0
       else float_of_int nonempty_count /. float_of_int (List.length finished));
    median_plan_width = int_median (List.map (fun s -> s.plan_width) samples);
    median_max_arity = int_median (List.map (fun s -> s.max_arity) samples);
  }

(* Experiment-wide domain pool, installed by the CLI/bench alongside the
   CSV channel and recorder hooks: the figure drivers call into Sweep
   without a context, so the pool travels the same way. A context with
   its own pool takes precedence. *)
let pool = ref (None : Parallel.Pool.t option)
let set_pool p = pool := p

(* Adaptive grain: fanning a batch across domains pays a fixed wakeup
   and bookkeeping cost, so a batch of cheap cells runs slower parallel
   than sequential. The first item is the probe — it runs inline and is
   timed, and the remainder fans out only when the measured per-item
   cost times the remaining count clears the pool's advisory grain,
   read as a work budget of [grain] × 100ns (the default 16384 ≈ 1.6ms;
   PPR_PAR_GRAIN rescales it, see {!Parallel.Pool.create}). *)
let adaptive_map p f = function
  | [] -> []
  | [ x ] -> [ f x ]
  | probe :: rest ->
    let t0 = Unix.gettimeofday () in
    let y = f probe in
    let dt = Unix.gettimeofday () -. t0 in
    let budget = float_of_int (Parallel.Pool.grain p) *. 1e-7 in
    if dt *. float_of_int (List.length rest) >= budget then
      y :: Parallel.Pool.map p f rest
    else y :: List.map f rest

let map_cells f xs =
  match !pool with
  | Some p when not (Parallel.Pool.current_is_worker ()) -> adaptive_map p f xs
  | _ -> List.map f xs

(* Fan a per-seed function across the pool. Telemetry is the one context
   ingredient that is not domain-safe (a single open-span stack), so
   instrumented runs stay sequential. *)
let map_seeds ctx f seeds =
  let chosen =
    match Relalg.Ctx.pool ctx with Some p -> Some p | None -> !pool
  in
  match chosen with
  | Some p when Option.is_none (Relalg.Ctx.telemetry ctx) ->
    adaptive_map p f seeds
  | _ -> List.map f seeds

let run_cell ?(limits_factory = fun () -> Relalg.Limits.create ()) ?ladder
    ?budget ?feedback ?observer ?(ctx = Relalg.Ctx.null) ~seeds ~instance
    ~meth () =
  let run_one seed =
    let db, cq = instance ~seed in
    let rng = Graphlib.Rng.make (seed * 7919) in
    match ladder with
    | None ->
      let outcome =
        Ppr_core.Driver.run ~rng ?feedback ?observer
          ~ctx:(Relalg.Ctx.with_limits ctx (limits_factory ()))
          meth db cq
      in
      {
        seconds =
          outcome.Ppr_core.Driver.compile_seconds
          +. outcome.Ppr_core.Driver.exec_seconds;
        status = outcome.Ppr_core.Driver.status;
        rescued = false;
        nonempty = Ppr_core.Driver.nonempty outcome;
        plan_width = outcome.Ppr_core.Driver.plan_width;
        max_arity = outcome.Ppr_core.Driver.max_arity;
      }
    | Some ladder ->
      let budget = Option.value budget ~default:Supervise.Budget.default in
      let report =
        Supervise.run ~rng ?feedback ?observer ~budget ~ladder ~ctx meth db cq
      in
      let final =
        match (report.Supervise.result, List.rev report.Supervise.attempts) with
        | Some outcome, _ -> outcome
        | None, last :: _ -> last.Supervise.outcome
        | None, [] -> assert false (* run always makes at least one attempt *)
      in
      {
        seconds = report.Supervise.total_seconds;
        status = final.Ppr_core.Driver.status;
        rescued = report.Supervise.rescued;
        nonempty = Ppr_core.Driver.nonempty final;
        plan_width = final.Ppr_core.Driver.plan_width;
        max_arity = final.Ppr_core.Driver.max_arity;
      }
  in
  aggregate (map_seeds ctx run_one seeds)

let column_width = 16

(* Optional machine-readable sinks; the header/columns of the panel being
   printed are remembered so rows can be attributed.

   All of this is shared mutable state, and with a pool installed the
   figure drivers run cells — and, in principle, whole rows — on worker
   domains. One mutex serializes every emission: a row's table line, CSV
   line(s) and recorder calls happen as one atomic section, so a CSV
   written under [--jobs N] is a row-permutation of the sequential one
   rather than an interleaving of half-written lines. *)
let sink_mutex = Mutex.create ()
let locked f = Mutex.protect sink_mutex f
let csv_channel = ref None
let csv_header_written = ref false
let recorder = ref (None : (row -> unit) option)
let current_panel = ref ("", ([] : string list))

let set_csv_channel ch =
  locked (fun () ->
      csv_channel := ch;
      csv_header_written := false)

let set_recorder r = locked (fun () -> recorder := r)

(* RFC 4180: a field containing a separator, a quote, or a line break
   must be quoted — an embedded newline in a panel title would otherwise
   split one logical row across two physical lines. *)
let csv_escape s =
  let needs_quoting = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let breakdown_string cell =
  String.concat "|"
    (List.map
       (fun (label, f) -> Printf.sprintf "%s:%.3f" label f)
       cell.abort_breakdown)

let csv_row ~x cells =
  match !csv_channel with
  | None -> ()
  | Some oc ->
    if not !csv_header_written then begin
      output_string oc
        "panel,x,method,median_seconds,abort_fraction,abort_reasons,\
         rescued_fraction,nonempty_fraction,plan_width,measured_width\n";
      csv_header_written := true
    end;
    let title, columns = !current_panel in
    List.iter2
      (fun column cell ->
        Printf.fprintf oc "%s,%s,%s,%s,%.3f,%s,%.3f,%.3f,%d,%d\n"
          (csv_escape title) (csv_escape x) (csv_escape column)
          (if cell.median_seconds = infinity then "timeout"
           else Printf.sprintf "%.6f" cell.median_seconds)
          cell.abort_fraction
          (csv_escape (breakdown_string cell))
          cell.rescued_fraction cell.nonempty_fraction cell.median_plan_width
          cell.median_max_arity)
      columns cells

let record_row ~x cells =
  match !recorder with
  | None -> ()
  | Some record ->
    let title, columns = !current_panel in
    List.iter2
      (fun column cell ->
        record
          { row_panel = title; row_x = x; row_method = column; row_cell = cell })
      columns cells

let print_header ~title ~columns ~x_label =
  locked (fun () ->
      current_panel := (title, columns);
      Printf.printf "\n== %s ==\n" title;
      Printf.printf "%-10s" x_label;
      List.iter (fun c -> Printf.printf "%*s" column_width c) columns;
      print_newline ();
      Printf.printf "%s\n"
        (String.make (10 + (column_width * List.length columns)) '-'))

let format_cell cell =
  if cell.abort_fraction > 0.5 then begin
    match cell.abort_breakdown with
    | [ (label, _) ] -> Printf.sprintf "abort:%s" label
    | _ -> "timeout"
  end
  else
    Printf.sprintf "%.4fs/%.0f%%" cell.median_seconds
      (100. *. cell.nonempty_fraction)

let print_row ~x ~cells =
  locked (fun () ->
      Printf.printf "%-10s" x;
      List.iter
        (fun c -> Printf.printf "%*s" column_width (format_cell c))
        cells;
      print_newline ();
      csv_row ~x cells;
      record_row ~x cells)

let print_width_summary ~cells =
  (* "predicted vs. measured": the analytic plan width next to the widest
     intermediate relation the execution actually materialized. Equality
     means the width analysis was exact on this panel's last row. *)
  locked (fun () ->
      let _, columns = !current_panel in
      Printf.printf "%-10s" "width";
      List.iter2
        (fun _column cell ->
          Printf.printf "%*s" column_width
            (Printf.sprintf "%d->%d" cell.median_plan_width
               cell.median_max_arity))
        columns cells;
      print_newline ();
      Printf.printf
        "(width row: predicted plan width -> measured max intermediate \
         arity, medians over seeds)\n")

let print_footer () =
  locked (fun () ->
      Printf.printf
        "(cells: median seconds / %% of finished seeds nonempty; \
         'abort:REASON'/'timeout' = resource guard tripped)\n%!")
